#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

namespace tcm::sim {

namespace {

// Shard slots of the intra-parallel diagnostic counters.
constexpr std::size_t kShardSpans = 0;      //!< spans stepped per controller
constexpr std::size_t kShardSpanTicks = 1;  //!< controller ticks inside spans
constexpr std::size_t kShardCycleTicks = 2; //!< single-cycle gang ticks

/** splitmix64: decorrelate per-thread trace seeds from the run seed. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Simulator::Simulator(const SystemConfig &config,
                     const std::vector<workload::ThreadProfile> &profiles,
                     const sched::SchedulerSpec &spec, std::uint64_t seed,
                     bool enableProbe)
    : config_(config)
{
    std::vector<std::unique_ptr<core::TraceSource>> traces;
    std::vector<int> weights;
    traces.reserve(profiles.size());
    weights.reserve(profiles.size());
    for (std::size_t t = 0; t < profiles.size(); ++t) {
        workload::ThreadProfile p = profiles[t];
        p.mpki *= config_.mpkiScale;
        traces.push_back(std::make_unique<workload::SyntheticTrace>(
            p, config_.geometry(), mixSeed(seed, t)));
        weights.push_back(p.weight);
    }
    init(std::move(traces), spec, seed, enableProbe, weights);
}

Simulator::Simulator(const SystemConfig &config,
                     std::vector<std::unique_ptr<core::TraceSource>> traces,
                     const sched::SchedulerSpec &spec, std::uint64_t seed,
                     bool enableProbe, std::vector<int> weights)
    : config_(config)
{
    if (weights.empty())
        weights.assign(traces.size(), 1);
    init(std::move(traces), spec, seed, enableProbe, weights);
}

void
Simulator::init(std::vector<std::unique_ptr<core::TraceSource>> traces,
                const sched::SchedulerSpec &spec, std::uint64_t seed,
                bool enableProbe, const std::vector<int> &weights)
{
    const int numThreads = static_cast<int>(traces.size());
    assert(static_cast<int>(weights.size()) == numThreads);
    traces_ = std::move(traces);

    policy_ = sched::makeScheduler(spec, seed);
    mem::SchedulerPolicy *active = policy_.get();
    if (enableProbe) {
        probe_ = std::make_unique<ProbePolicy>(*policy_);
        active = probe_.get();
    }
    active->configure(numThreads, config_.numChannels,
                      config_.timing.banksPerChannel);

    counters_.resize(numThreads);
    active->setCoreCounters(&counters_);

    bool anyWeight = false;
    for (int w : weights)
        anyWeight |= w != 1;
    if (anyWeight)
        active->setThreadWeights(weights);

    if (config_.protocolCheck)
        checker_ = std::make_unique<dram::ProtocolChecker>(config_.timing);

    // Closed-page policies (e.g. FRFCFS-CP) pick their controller row
    // policy at construction; the probe forwards the preference.
    if (active->prefersClosedPage())
        config_.controller.pagePolicy = mem::PagePolicy::Closed;

    controllers_.reserve(config_.numChannels);
    for (ChannelId ch = 0; ch < config_.numChannels; ++ch) {
        controllers_.push_back(std::make_unique<mem::MemoryController>(
            ch, config_.timing, config_.controller, *active));
        active->attachQueue(ch, controllers_.back().get());
        if (checker_) {
            controllers_.back()->addCommandObserver(checker_.get());
            checker_->observeChannel(ch);
        }
    }

    std::vector<mem::MemoryController *> mcs;
    for (auto &mc : controllers_)
        mcs.push_back(mc.get());

    cores_.reserve(numThreads);
    for (ThreadId t = 0; t < numThreads; ++t) {
        cores_.push_back(std::make_unique<core::Core>(
            t, config_.core, *traces_[t], mcs, &counters_[t]));
    }

    baseInstructions_.assign(numThreads, 0);
    baseMisses_.assign(numThreads, 0);
    coreSpan_.assign(numThreads, 0);

    // Earliest a read issued at cycle u can wake its core: u + tCL +
    // tBURST + mcToCpuDelay. Decoupled spans never exceed this lag, so
    // delivering span-produced completions at the barrier is invisible.
    completionLag_ = config_.timing.tCL + config_.timing.tBURST +
                     config_.timing.mcToCpuDelay;

    if (config_.intraRunParallel > 1) {
        const std::size_t nch = controllers_.size();
        const int tasks = static_cast<int>(nch + cores_.size());
        gang_ = std::make_unique<SpinGang>(
            std::min(config_.intraRunParallel, tasks));
        const std::vector<std::string> labels = {"ctrl.spans",
                                                 "ctrl.span.ticks",
                                                 "ctrl.cycle.ticks"};
        parallelStats_ = stats::NamedCounters(labels);
        workerShards_.assign(nch, stats::NamedCounters(labels));
        replayIdx_.assign(nch, 0);
        // One reusable task body: per-barrier state flows through the
        // span members so gang dispatch never allocates.
        gangTask_ = [this, nch](std::size_t i) {
            if (spanCycleMode_) {
                controllers_[i]->tick(spanFrom_);
                workerShards_[i].bump(kShardCycleTicks);
                return;
            }
            if (i < nch) {
                std::size_t ticks = controllers_[i]->stepSpan(spanFrom_,
                                                              spanTo_);
                workerShards_[i].bump(kShardSpans);
                workerShards_[i].bump(kShardSpanTicks, ticks);
                return;
            }
            // Core lane: controller-free by the span's touch bound, so
            // it only needs the core's own regime machinery. Regime
            // occupancy lands in per-core profiler slots this lane owns
            // for the duration of the span (published by the join).
            const std::size_t coreIdx = i - nch;
            core::Core &core = *cores_[coreIdx];
            for (Cycle u = spanFrom_; u < spanTo_;) {
                Cycle span = core.silentSpan(u, spanTo_ - u);
                if (span > 0) {
                    core.fastForwardSilent(span);
                    if (prof_)
                        prof_->addRegime(coreIdx,
                                         core.dormantHead()
                                             ? prof::Regime::Dormant
                                             : prof::Regime::Streaming,
                                         span);
                    u += span;
                } else {
                    core.tick(u);
                    if (prof_)
                        prof_->addRegime(coreIdx, prof::Regime::Lockstep, 1);
                    ++u;
                }
            }
        };
    }
}

Simulator::~Simulator() = default;

void
Simulator::attachCommandObserver(dram::CommandObserver *observer)
{
    for (auto &mc : controllers_)
        mc->addCommandObserver(observer);
}

void
Simulator::attachTelemetry(telemetry::TelemetrySink *sink)
{
    telemetry_ = sink;
    const telemetry::TelemetryConfig &cfg = sink->config();

    telemetry::TelemetrySink::Meta meta = sink->meta();
    meta.scheduler = policy_->name();
    meta.numThreads = numThreads();
    meta.numChannels = config_.numChannels;
    meta.sampleInterval = cfg.sampleInterval;
    sink->setMeta(std::move(meta));

    // Decisions come from the real policy (the probe wrapper only
    // forwards hooks; it makes no decisions of its own).
    if (cfg.traceDecisions)
        policy_->setDecisionSink(sink);

    if (cfg.traceLifecycle)
        for (auto &mc : controllers_)
            mc->setLifecycleSink(sink);

    if (cfg.sampleInterval > 0) {
        sampler_ = std::make_unique<telemetry::IntervalSampler>(
            numThreads(), config_.numChannels, config_.timing.tCK,
            config_.timing.tBURST);
        sampler_->rebase(now_, threadGauges(), channelGauges());
        telemetrySampleAt_ = now_ + cfg.sampleInterval;
    }
}

void
Simulator::attachProfiler(prof::Profiler *profiler)
{
    prof_ = profiler;
    if (prof_ == nullptr) {
        for (auto &mc : controllers_)
            mc->setProfile(nullptr);
        if (gang_)
            gang_->setLaneProfile(nullptr, nullptr);
        return;
    }
    prof_->configure(numThreads(), config_.numChannels,
                     gang_ ? gang_->lanes() : 1);
    for (ChannelId ch = 0; ch < config_.numChannels; ++ch)
        controllers_[ch]->setProfile(prof_->controllerShard(ch));
    // Gang lanes time their claimed tasks into per-lane slots; the
    // workers pick the pointers up at the next fork edge (epoch
    // release/acquire), so attaching before stepping is race-free.
    if (gang_)
        gang_->setLaneProfile(prof_->laneBusyNs(), prof_->laneTasks());
}

std::vector<telemetry::ThreadGauges>
Simulator::threadGauges()
{
    std::vector<telemetry::ThreadGauges> gauges(cores_.size());
    sched::ThreadBankMonitor::Snapshot snap;
    if (probe_)
        snap = probe_->monitor().snapshot(now_);
    for (std::size_t t = 0; t < gauges.size(); ++t) {
        telemetry::ThreadGauges &g = gauges[t];
        g.instructions = counters_[t].instructions;
        g.readMisses = counters_[t].readMisses;
        if (probe_) {
            ThreadId tid = static_cast<ThreadId>(t);
            g.hasBehavior = true;
            g.shadowHits = snap.shadowHits[t];
            g.accesses = snap.accesses[t];
            g.banksWithLoad = probe_->monitor().banksWithLoad(tid);
            g.outstanding = probe_->monitor().outstanding(tid);
        }
    }
    return gauges;
}

std::vector<telemetry::ChannelGauges>
Simulator::channelGauges() const
{
    std::vector<telemetry::ChannelGauges> gauges(controllers_.size());
    for (std::size_t ch = 0; ch < gauges.size(); ++ch) {
        const mem::ControllerStats &s = controllers_[ch]->stats();
        telemetry::ChannelGauges &g = gauges[ch];
        g.commands = s.activates + s.precharges + s.readsServiced +
                     s.writesServiced + s.refreshes;
        g.columns = s.readsServiced + s.writesServiced;
        g.rowHits = s.rowHits;
        g.readQueue = static_cast<std::uint32_t>(controllers_[ch]->readLoad());
        g.writeQueue =
            static_cast<std::uint32_t>(controllers_[ch]->writeLoad());
    }
    return gauges;
}

void
Simulator::sampleTelemetry()
{
    prof::ScopedPhase timer(prof_ ? &prof_->main() : nullptr,
                            prof::Phase::Telemetry);
    sampler_->sample(now_, threadGauges(), channelGauges(), *telemetry_);
    if (prof_) {
        // Cumulative simulator-side sample, rendered as the "simulator"
        // lane in the Chrome trace (the JSONL stream is untouched —
        // its bytes are part of the bit-identity contract).
        prof::Profiler::Pulse p = prof_->pulse();
        telemetry_->addSimulatorSample(
            telemetry::SimulatorSample{now_, p.wallMs, p.skips,
                                       p.skippedCycles});
    }
    telemetrySampleAt_ = now_ + telemetry_->config().sampleInterval;
}

void
Simulator::executeCycle(Cycle now, mem::SchedulerPolicy *active,
                        Cycle regimeCap)
{
    {
        prof::ScopedPhase timer(prof_ ? &prof_->main() : nullptr,
                                prof::Phase::SchedTick);
        active->tick(now);
    }
    for (auto &mc : controllers_) {
        mc->tick(now);
        auto &comps = mc->completions();
        if (!comps.empty()) {
            for (const auto &c : comps) {
                cores_[c.thread]->completeMiss(c.missId, c.readyAt);
                // A delivered completion can end a dormant regime;
                // force a fresh regime test for this core.
                coreSpan_[c.thread] = 0;
            }
            comps.clear();
        }
    }
    {
        prof::ScopedPhase coreTimer(prof_ ? &prof_->main() : nullptr,
                                    prof::Phase::CoreTick);
        if (regimeCap > 0) {
            // Cycle-skip mode: cores provably inside a silent regime
            // take the O(1) closed form; the regime test runs after
            // completions were delivered, so a just-woken core correctly
            // falls out of the dormant regime and takes the full tick.
            // Cached spans survive executed cycles: a regime depends
            // only on the core's own state, which only a full tick or a
            // completion (reset above) can disturb.
            for (std::size_t i = 0; i < cores_.size(); ++i) {
                if (coreSpan_[i] == 0)
                    coreSpan_[i] = cores_[i]->silentSpan(now, regimeCap);
                if (coreSpan_[i] > 0) {
                    cores_[i]->fastForwardSilent(1);
                    --coreSpan_[i];
                    if (prof_)
                        prof_->addRegime(i,
                                         cores_[i]->dormantHead()
                                             ? prof::Regime::Dormant
                                             : prof::Regime::Streaming,
                                         1);
                } else {
                    cores_[i]->tick(now);
                    if (prof_)
                        prof_->addRegime(i, prof::Regime::Lockstep, 1);
                }
            }
        } else {
            for (std::size_t i = 0; i < cores_.size(); ++i) {
                cores_[i]->tick(now);
                if (prof_)
                    prof_->addRegime(i, prof::Regime::Lockstep, 1);
            }
        }
    }
    if (now >= telemetrySampleAt_)
        sampleTelemetry();
}

Cycle
Simulator::horizonAt(Cycle now, Cycle end, const mem::SchedulerPolicy *active,
                     prof::HorizonSource &src) const
{
    // Value-identical to min-of-everything-then-clamp; the source
    // tracking mirrors std::min's tie behavior (first listed wins).
    Cycle h = active->nextEventAt(now);
    src = prof::HorizonSource::Scheduler;
    if (telemetrySampleAt_ < h) {
        h = telemetrySampleAt_;
        src = prof::HorizonSource::Telemetry;
    }
    for (const auto &mc : controllers_) {
        const Cycle m = mc->nextEventAt(now);
        if (m < h) {
            h = m;
            src = prof::HorizonSource::Controller;
        }
    }
    if (h > end) {
        h = end;
        src = prof::HorizonSource::End;
    }
    return h < now ? now : h;
}

void
Simulator::step(Cycle cycles)
{
    mem::SchedulerPolicy *active = probe_ ? static_cast<mem::SchedulerPolicy *>(
                                                probe_.get())
                                          : policy_.get();
    if (gang_) {
        stepParallel(cycles, active);
        return;
    }
    const Cycle end = now_ + cycles;

    if (!config_.cycleSkip) {
        // Per-cycle oracle: the original loop, kept verbatim as the
        // differential reference for the event-horizon kernel.
        for (; now_ < end; ++now_)
            executeCycle(now_, active, /*regimeCap=*/0);
        return;
    }

    // Event-horizon kernel. Invariant: every cycle at which a scheduler,
    // controller, or telemetry clock could act — and every cycle at
    // which a core submits a memory operation — is executed through
    // executeCycle in canonical order, so all cross-component state
    // changes happen exactly as in the per-cycle loop. Cycles strictly
    // inside a horizon span touch cores only: in-regime cores advance
    // by the closed form, out-of-regime cores tick in lockstep (exact,
    // just without the no-op scheduler/controller calls).
    const std::size_t n = cores_.size();
    coreSpan_.assign(n, 0);
    while (now_ < end) {
        executeCycle(now_, active, /*regimeCap=*/end - now_);
        ++now_;
        if (now_ >= end)
            break;
        prof::HorizonSource hsrc = prof::HorizonSource::Scheduler;
        const Cycle h = horizonAt(now_, end, active, hsrc);
        prof::ScopedPhase coreTimer(prof_ ? &prof_->main() : nullptr,
                                    prof::Phase::CoreTick);
        while (now_ < h) {
            // Refresh expired spans; cores untouched since their span
            // was computed keep the remainder (no completion can have
            // arrived inside the horizon, and completions at executed
            // cycles reset the span).
            Cycle k = h - now_;
            std::size_t out = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (coreSpan_[i] == 0)
                    coreSpan_[i] = cores_[i]->silentSpan(now_, end - now_);
                if (coreSpan_[i] == 0)
                    ++out;
                else
                    k = std::min(k, coreSpan_[i]);
            }
            if (out == 0) {
                // Whole fleet in regime: one closed-form jump.
                for (std::size_t i = 0; i < n; ++i) {
                    cores_[i]->fastForwardSilent(k);
                    coreSpan_[i] -= k;
                }
                if (prof_) {
                    // Attribute the realized jump: a jump cut short of
                    // the horizon was bounded by a core regime ending.
                    prof_->recordSkip(now_ + k == h
                                          ? hsrc
                                          : prof::HorizonSource::Core,
                                      k);
                    for (std::size_t i = 0; i < n; ++i)
                        prof_->addRegime(i,
                                         cores_[i]->dormantHead()
                                             ? prof::Regime::Dormant
                                             : prof::Regime::Streaming,
                                         k);
                }
                now_ += k;
                continue;
            }
            // A submission this cycle is a cross-component effect:
            // promote it to a fully executed cycle so the controller
            // sees it in canonical order. Only out-of-regime cores can
            // submit (both regimes preclude reaching a memory access).
            bool submits = false;
            for (std::size_t i = 0; i < n; ++i) {
                if (coreSpan_[i] == 0 && cores_[i]->wouldSubmitAt(now_)) {
                    submits = true;
                    break;
                }
            }
            if (submits)
                break;
            // Mixed single cycle: lockstep-tick the out-of-regime
            // cores, closed-form the rest.
            for (std::size_t i = 0; i < n; ++i) {
                if (coreSpan_[i] > 0) {
                    cores_[i]->fastForwardSilent(1);
                    --coreSpan_[i];
                    if (prof_)
                        prof_->addRegime(i,
                                         cores_[i]->dormantHead()
                                             ? prof::Regime::Dormant
                                             : prof::Regime::Streaming,
                                         1);
                } else {
                    cores_[i]->tick(now_);
                    if (prof_)
                        prof_->addRegime(i, prof::Regime::Lockstep, 1);
                }
            }
            ++now_;
        }
    }

    // Catch up lazily accrued scheduler statistics (STFM stall time) to
    // the last simulated cycle so post-step reads observe the same
    // values the per-cycle loop leaves behind. No-op in per-cycle mode
    // and for stateless-in-time policies.
    if (cycles > 0)
        active->syncTo(now_ - 1);
}

void
Simulator::mergeShards()
{
    for (auto &shard : workerShards_) {
        parallelStats_.addFrom(shard);
        shard.reset();
    }
}

void
Simulator::replayDeferred(mem::SchedulerPolicy *active)
{
    const std::size_t nch = controllers_.size();

    // Scheduler hooks, merged by (cycle, channel) — the order the serial
    // loop fires them in. Lazily accrued policy statistics are synced to
    // each hook cycle first: serially, the policy ticks at that cycle
    // (accruing with pre-hook state) before the controller's hooks fire.
    replayIdx_.assign(nch, 0);
    for (;;) {
        Cycle c = kCycleNever;
        for (std::size_t ch = 0; ch < nch; ++ch) {
            const auto &log = controllers_[ch]->deferredHooks();
            if (replayIdx_[ch] < log.size())
                c = std::min(c, log[replayIdx_[ch]].cycle);
        }
        if (c == kCycleNever)
            break;
        active->syncTo(c);
        for (std::size_t ch = 0; ch < nch; ++ch) {
            const auto &log = controllers_[ch]->deferredHooks();
            std::size_t &i = replayIdx_[ch];
            while (i < log.size() && log[i].cycle == c)
                mem::MemoryController::replayHook(*active, log[i++]);
        }
    }

    // Command events to the channel observers (protocol checker, trace
    // recorders), same merge order. Consumers are disjoint from the
    // policy, so cross-category order is immaterial.
    replayIdx_.assign(nch, 0);
    for (;;) {
        Cycle c = kCycleNever;
        for (std::size_t ch = 0; ch < nch; ++ch) {
            const auto &log = controllers_[ch]->deferredEvents();
            if (replayIdx_[ch] < log.size())
                c = std::min(c, log[replayIdx_[ch]].cycle);
        }
        if (c == kCycleNever)
            break;
        for (std::size_t ch = 0; ch < nch; ++ch) {
            const auto &log = controllers_[ch]->deferredEvents();
            std::size_t &i = replayIdx_[ch];
            while (i < log.size() && log[i].cycle == c)
                controllers_[ch]->channel().dispatch(log[i++]);
        }
    }

    // Lifecycle records to the telemetry sink (JSONL event order is
    // part of the bit-identity contract).
    if (telemetry_) {
        replayIdx_.assign(nch, 0);
        for (;;) {
            Cycle c = kCycleNever;
            for (std::size_t ch = 0; ch < nch; ++ch) {
                const auto &log = controllers_[ch]->deferredLifecycles();
                if (replayIdx_[ch] < log.size())
                    c = std::min(c, log[replayIdx_[ch]].cycle);
            }
            if (c == kCycleNever)
                break;
            for (std::size_t ch = 0; ch < nch; ++ch) {
                const auto &log = controllers_[ch]->deferredLifecycles();
                std::size_t &i = replayIdx_[ch];
                while (i < log.size() && log[i].cycle == c) {
                    const auto &r = log[i++];
                    telemetry_->recordLifecycle(r.thread, r.queueing,
                                                r.service);
                }
            }
        }
    }

    for (auto &mc : controllers_) {
        mc->deferredHooks().clear();
        mc->deferredEvents().clear();
        mc->deferredLifecycles().clear();
    }
}

void
Simulator::gangExecuteCycle(Cycle now, mem::SchedulerPolicy *active,
                            Cycle regimeCap)
{
    {
        prof::ScopedPhase timer(prof_ ? &prof_->main() : nullptr,
                                prof::Phase::SchedTick);
        active->tick(now);
    }
    for (auto &mc : controllers_)
        mc->beginDeferred();
    spanCycleMode_ = true;
    spanFrom_ = now;
    {
        prof::ScopedPhase timer(prof_ ? &prof_->main() : nullptr,
                                prof::Phase::GangRun);
        gang_->run(controllers_.size(), gangTask_);
    }
    for (auto &mc : controllers_)
        mc->endDeferred();
    mergeShards();
    {
        prof::ScopedPhase timer(prof_ ? &prof_->main() : nullptr,
                                prof::Phase::Replay);
        replayDeferred(active);
    }
    for (auto &mc : controllers_) {
        auto &comps = mc->completions();
        for (const auto &c : comps)
            cores_[c.thread]->completeMiss(c.missId, c.readyAt);
        comps.clear();
    }
    // Cores, in the same regime form as executeCycle — but with the
    // regime probed fresh each cycle instead of cached in coreSpan_
    // (decoupled spans advance cores behind the cache's back).
    {
        prof::ScopedPhase coreTimer(prof_ ? &prof_->main() : nullptr,
                                    prof::Phase::CoreTick);
        if (regimeCap > 0) {
            for (std::size_t i = 0; i < cores_.size(); ++i) {
                if (cores_[i]->silentSpan(now, regimeCap) > 0) {
                    cores_[i]->fastForwardSilent(1);
                    if (prof_)
                        prof_->addRegime(i,
                                         cores_[i]->dormantHead()
                                             ? prof::Regime::Dormant
                                             : prof::Regime::Streaming,
                                         1);
                } else {
                    cores_[i]->tick(now);
                    if (prof_)
                        prof_->addRegime(i, prof::Regime::Lockstep, 1);
                }
            }
        } else {
            for (std::size_t i = 0; i < cores_.size(); ++i) {
                cores_[i]->tick(now);
                if (prof_)
                    prof_->addRegime(i, prof::Regime::Lockstep, 1);
            }
        }
    }
    if (now >= telemetrySampleAt_)
        sampleTelemetry();
}

void
Simulator::stepParallel(Cycle cycles, mem::SchedulerPolicy *active)
{
    const Cycle end = now_ + cycles;

    if (!config_.cycleSkip) {
        // Per-cycle mode: every cycle is a gang cycle. The policy ticks
        // every cycle, so no trailing syncTo is needed (as in the
        // serial oracle loop); replay-time syncTo calls are idempotent.
        for (; now_ < end; ++now_)
            gangExecuteCycle(now_, active, /*regimeCap=*/0);
        return;
    }

    while (now_ < end) {
        gangExecuteCycle(now_, active, /*regimeCap=*/end - now_);
        ++now_;
        if (now_ >= end)
            break;

        // Decoupled span [now_, h): controllers and cores step
        // concurrently, each self-pacing across its dead cycles, with
        // every cross-component side effect deferred to the barrier.
        // h is the earliest of:
        //  - the policy's decoupling horizon (quantum / shuffle / batch
        //    / update boundaries; ticks before it are no-ops even with
        //    hooks withheld),
        //  - the telemetry sampling clock (samples run at executed
        //    cycles),
        //  - the completion lag (span-produced completions delivered at
        //    the barrier must still be in the cores' future),
        //  - each core's earliest possible memory touch (a core that
        //    could reach a memory access must tick at an executed cycle,
        //    in canonical order against live controller state).
        prof::HorizonSource hsrc = prof::HorizonSource::Scheduler;
        Cycle h = active->decoupleHorizon(now_);
        if (telemetrySampleAt_ < h) {
            h = telemetrySampleAt_;
            hsrc = prof::HorizonSource::Telemetry;
        }
        if (end < h) {
            h = end;
            hsrc = prof::HorizonSource::End;
        }
        bool anyReads = false;
        for (auto &mc : controllers_)
            anyReads = anyReads || mc->readLoad() > 0;
        if (anyReads && now_ + completionLag_ < h) {
            h = now_ + completionLag_;
            hsrc = prof::HorizonSource::Controller;
        }
        for (auto &core : cores_) {
            const Cycle b = core->earliestMemTouchBound(now_);
            if (b < h) {
                h = b;
                hsrc = prof::HorizonSource::Core;
            }
        }
        if (h <= now_)
            continue; // next iteration executes a canonical gang cycle
        if (prof_)
            prof_->recordSkip(hsrc, h - now_);

        for (auto &mc : controllers_)
            mc->beginDeferred();
        spanCycleMode_ = false;
        spanFrom_ = now_;
        spanTo_ = h;
        {
            prof::ScopedPhase timer(prof_ ? &prof_->main() : nullptr,
                                    prof::Phase::GangRun);
            gang_->run(controllers_.size() + cores_.size(), gangTask_);
        }
        for (auto &mc : controllers_)
            mc->endDeferred();
        mergeShards();
        {
            prof::ScopedPhase timer(prof_ ? &prof_->main() : nullptr,
                                    prof::Phase::Replay);
            replayDeferred(active);
        }
        for (auto &mc : controllers_) {
            auto &comps = mc->completions();
            for (const auto &c : comps)
                cores_[c.thread]->completeMiss(c.missId, c.readyAt);
            comps.clear();
        }
        now_ = h;
    }

    if (cycles > 0)
        active->syncTo(now_ - 1);
}

void
Simulator::beginMeasurement()
{
    measureStart_ = now_;
    for (std::size_t t = 0; t < cores_.size(); ++t) {
        baseInstructions_[t] = counters_[t].instructions;
        baseMisses_[t] = counters_[t].readMisses;
    }
    for (auto &mc : controllers_)
        mc->resetStats();
    if (probe_)
        probe_->resetProbe(now_);
    // Controller/probe counters just rewound; rebase the sampler so the
    // next interval differentiates against the reset values.
    if (sampler_) {
        sampler_->rebase(now_, threadGauges(), channelGauges());
        telemetrySampleAt_ = now_ + telemetry_->config().sampleInterval;
    }
}

void
Simulator::run(Cycle warmup, Cycle measure)
{
    step(warmup);
    beginMeasurement();
    step(measure);
}

double
Simulator::measuredIpc(ThreadId t) const
{
    Cycle elapsed = now_ - measureStart_;
    if (elapsed == 0)
        return 0.0;
    std::uint64_t insts = counters_[t].instructions - baseInstructions_[t];
    return static_cast<double>(insts) / static_cast<double>(elapsed);
}

Simulator::BehaviorStats
Simulator::behavior(ThreadId t) const
{
    BehaviorStats b;
    b.ipc = measuredIpc(t);
    std::uint64_t insts = counters_[t].instructions - baseInstructions_[t];
    std::uint64_t misses = counters_[t].readMisses - baseMisses_[t];
    b.mpki = insts > 0 ? 1000.0 * static_cast<double>(misses) /
                             static_cast<double>(insts)
                       : 0.0;
    if (probe_) {
        auto s = probe_->monitor().snapshot(now_);
        b.blp = s.blp[t];
        b.rbl = s.rbl[t];
        b.probed = true;
    }
    return b;
}

const mem::ControllerStats &
Simulator::controllerStats(ChannelId ch) const
{
    return controllers_[ch]->stats();
}

const mem::LatencyTracker &
Simulator::latency(ChannelId ch) const
{
    return controllers_[ch]->latency();
}

dram::CommandCounts
Simulator::commandCounts(ChannelId ch) const
{
    const mem::ControllerStats &s = controllers_[ch]->stats();
    dram::CommandCounts c;
    c.activates = s.activates;
    c.reads = s.readsServiced;
    c.writes = s.writesServiced;
    c.refreshes = s.refreshes;
    c.bankBusyCycles = s.bankBusyCycles;
    const dram::Channel &chan = controllers_[ch]->channel();
    for (int r = 0; r < chan.numRanks(); ++r)
        c.powerDownBankCycles +=
            static_cast<std::uint64_t>(chan.rankPowerDownCycles(r, now_)) *
            config_.timing.banksPerRank();
    return c;
}

} // namespace tcm::sim
