#include "sim/report.hpp"

#include <stdexcept>

#include "dram/energy.hpp"
#include "stats/histogram.hpp"

namespace tcm::sim {

namespace {

/**
 * Format a probe gauge: the measured value under @p fmt, or @p missing
 * when the run had no behaviour probe ("n/a" in tables, an empty cell
 * in CSV).
 */
std::string
gaugeCell(bool probed, double v, const char *fmt,
          const char *missing = "n/a")
{
    if (!probed)
        return missing;
    char buf[32];
    std::snprintf(buf, sizeof buf, fmt, v);
    return buf;
}

} // namespace

SystemReport
SystemReport::collect(const Simulator &sim,
                      const std::vector<std::string> &threadNames)
{
    SystemReport report;
    report.measuredCycles = sim.measuredCycles();
    report.scheduler = sim.scheduler().name();

    const SystemConfig &cfg = sim.config();
    const int numThreads = sim.numThreads();

    for (ThreadId t = 0; t < numThreads; ++t) {
        ThreadReport tr;
        tr.id = t;
        tr.name = t < static_cast<ThreadId>(threadNames.size())
                      ? threadNames[t]
                      : "t" + std::to_string(t);
        auto b = sim.behavior(t);
        tr.ipc = b.ipc;
        tr.mpki = b.mpki;
        tr.rbl = b.rbl;
        tr.blp = b.blp;
        tr.behaviorProbed = b.probed;

        // Merge latency across channels (shared bucket ladder).
        stats::Histogram merged = sim.latency(0).threadHistogram(t);
        double weighted_mean = merged.mean() * merged.count();
        std::uint64_t n = merged.count();
        for (ChannelId ch = 1; ch < cfg.numChannels; ++ch) {
            const stats::Histogram &h =
                sim.latency(ch).threadHistogram(t);
            weighted_mean += h.mean() * h.count();
            n += h.count();
            merged.merge(h);
        }
        tr.reads = n;
        tr.latencyMean = n ? weighted_mean / static_cast<double>(n) : 0.0;
        tr.latencyP50 = merged.percentile(0.50);
        tr.latencyP99 = merged.percentile(0.99);
        tr.latencyMax = merged.max();
        report.threads.push_back(tr);
    }

    dram::EnergyParams energy =
        dram::EnergyParams::forGeneration(cfg.timing.generation);
    for (ChannelId ch = 0; ch < cfg.numChannels; ++ch) {
        const mem::ControllerStats &s = sim.controllerStats(ch);
        ChannelReport cr;
        cr.id = ch;
        cr.reads = s.readsServiced;
        cr.writes = s.writesServiced;
        cr.activates = s.activates;
        cr.refreshes = s.refreshes;
        std::uint64_t cols = s.readsServiced + s.writesServiced;
        cr.rowHitRate =
            cols ? static_cast<double>(s.rowHits) / cols : 0.0;
        double budget = static_cast<double>(report.measuredCycles) *
                        cfg.timing.banksPerChannel;
        cr.bankUtilization =
            budget > 0.0 ? static_cast<double>(s.bankBusyCycles) / budget
                         : 0.0;
        cr.averagePowerMw =
            dram::computeEnergy(energy, sim.commandCounts(ch),
                                report.measuredCycles,
                                cfg.timing.banksPerChannel,
                                cfg.timing.cyclesPerNs)
                .averageMw(report.measuredCycles, cfg.timing.cyclesPerNs);
        report.channels.push_back(cr);
    }

    if (const dram::ProtocolChecker *checker = sim.protocolChecker()) {
        report.protocol.audited = true;
        report.protocol.commandsAudited = checker->eventsAudited();
        report.protocol.violations = checker->violationCount();
        report.protocol.byConstraint = checker->counters().nonZero();
        for (const dram::Violation &v : checker->violations())
            report.protocol.details.push_back(v.message);
    }
    return report;
}

void
SystemReport::addTelemetry(const telemetry::TelemetrySink &sink)
{
    telemetry.enabled = true;
    telemetry.threadSamples = sink.threadSamples().size();
    telemetry.channelSamples = sink.channelSamples().size();
    telemetry.decisionEvents = sink.events().size();
    telemetry.lifecycleRecords = sink.lifecycleRecords();
    telemetry.droppedRecords = sink.droppedRecords();
}

void
SystemReport::addProfile(const prof::ProfileReport &report)
{
    profile = report;
}

void
SystemReport::print(std::FILE *out) const
{
    std::fprintf(out,
                 "system report: scheduler=%s, measured %llu cycles\n",
                 scheduler.c_str(),
                 static_cast<unsigned long long>(measuredCycles));
    std::fprintf(out,
                 "%-4s %-12s %7s %8s %6s %6s %9s | %9s %9s %9s %9s\n",
                 "id", "thread", "IPC", "MPKI", "RBL", "BLP", "reads",
                 "lat.mean", "lat.p50", "lat.p99", "lat.max");
    for (const ThreadReport &t : threads) {
        std::fprintf(out,
                     "%-4d %-12s %7.3f %8.2f %6s %6s %9llu | %9.0f "
                     "%9.0f %9.0f %9.0f\n",
                     t.id, t.name.c_str(), t.ipc, t.mpki,
                     gaugeCell(t.behaviorProbed, t.rbl, "%.3f").c_str(),
                     gaugeCell(t.behaviorProbed, t.blp, "%.2f").c_str(),
                     static_cast<unsigned long long>(t.reads),
                     t.latencyMean, t.latencyP50, t.latencyP99,
                     t.latencyMax);
    }
    std::fprintf(out, "%-4s %9s %9s %9s %5s %8s %8s %9s\n", "ch", "reads",
                 "writes", "ACTs", "REFs", "rowhit%", "util%", "power mW");
    for (const ChannelReport &c : channels) {
        std::fprintf(out,
                     "%-4d %9llu %9llu %9llu %5llu %7.1f%% %7.1f%% %9.1f\n",
                     c.id, static_cast<unsigned long long>(c.reads),
                     static_cast<unsigned long long>(c.writes),
                     static_cast<unsigned long long>(c.activates),
                     static_cast<unsigned long long>(c.refreshes),
                     100.0 * c.rowHitRate, 100.0 * c.bankUtilization,
                     c.averagePowerMw);
    }
    if (protocol.audited) {
        std::fprintf(out,
                     "protocol audit: %llu violation(s) in %llu commands\n",
                     static_cast<unsigned long long>(protocol.violations),
                     static_cast<unsigned long long>(
                         protocol.commandsAudited));
        for (const auto &[name, count] : protocol.byConstraint)
            std::fprintf(out, "  %-16s %llu\n", name.c_str(),
                         static_cast<unsigned long long>(count));
        for (const std::string &line : protocol.details)
            std::fprintf(out, "  %s\n", line.c_str());
    }
    if (telemetry.enabled) {
        std::fprintf(
            out,
            "telemetry: %llu thread + %llu channel samples, "
            "%llu events, %llu lifecycle records, %llu dropped\n",
            static_cast<unsigned long long>(telemetry.threadSamples),
            static_cast<unsigned long long>(telemetry.channelSamples),
            static_cast<unsigned long long>(telemetry.decisionEvents),
            static_cast<unsigned long long>(telemetry.lifecycleRecords),
            static_cast<unsigned long long>(telemetry.droppedRecords));
    }
    profile.print(out); // no-op unless the run carried a profiler
}

void
SystemReport::writeCsv(const std::string &prefix) const
{
    {
        std::string path = prefix + "_threads.csv";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            throw std::runtime_error("cannot write " + path);
        std::fprintf(f, "id,name,ipc,mpki,rbl,blp,reads,lat_mean,lat_p50,"
                        "lat_p99,lat_max\n");
        for (const ThreadReport &t : threads)
            // Unprobed rbl/blp become empty CSV cells, not 0.
            std::fprintf(f, "%d,%s,%.6f,%.4f,%s,%s,%llu,%.1f,%.1f,"
                            "%.1f,%.1f\n",
                         t.id, t.name.c_str(), t.ipc, t.mpki,
                         gaugeCell(t.behaviorProbed, t.rbl, "%.4f", "")
                             .c_str(),
                         gaugeCell(t.behaviorProbed, t.blp, "%.4f", "")
                             .c_str(),
                         static_cast<unsigned long long>(t.reads),
                         t.latencyMean, t.latencyP50, t.latencyP99,
                         t.latencyMax);
        std::fclose(f);
    }
    {
        std::string path = prefix + "_channels.csv";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            throw std::runtime_error("cannot write " + path);
        std::fprintf(f, "id,reads,writes,activates,refreshes,row_hit_rate,"
                        "bank_utilization,avg_power_mw\n");
        for (const ChannelReport &c : channels)
            std::fprintf(f, "%d,%llu,%llu,%llu,%llu,%.4f,%.4f,%.2f\n",
                         c.id, static_cast<unsigned long long>(c.reads),
                         static_cast<unsigned long long>(c.writes),
                         static_cast<unsigned long long>(c.activates),
                         static_cast<unsigned long long>(c.refreshes),
                         c.rowHitRate, c.bankUtilization,
                         c.averagePowerMw);
        std::fclose(f);
    }
}

} // namespace tcm::sim
