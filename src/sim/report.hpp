/**
 * @file
 * Structured post-run reporting: per-thread and per-channel statistics
 * as printable tables or CSV files (for external plotting).
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "prof/profiler.hpp"
#include "sim/simulator.hpp"

namespace tcm::sim {

/** One thread's row in a report. */
struct ThreadReport
{
    ThreadId id = 0;
    std::string name;
    double ipc = 0.0;
    double mpki = 0.0;
    double rbl = 0.0; //!< meaningless unless behaviorProbed
    double blp = 0.0; //!< meaningless unless behaviorProbed
    /**
     * True when rbl/blp were actually measured (the simulator ran with
     * the behaviour probe). When false the tables render "n/a" and the
     * CSV cells are left empty — a probe-less run must never be read as
     * "this thread had zero row-buffer locality".
     */
    bool behaviorProbed = false;
    std::uint64_t reads = 0;
    double latencyMean = 0.0;
    double latencyP50 = 0.0;
    double latencyP99 = 0.0;
    double latencyMax = 0.0;
};

/** One channel's row in a report. */
struct ChannelReport
{
    ChannelId id = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t activates = 0;
    std::uint64_t refreshes = 0;
    double rowHitRate = 0.0;
    double bankUtilization = 0.0; //!< busy cycles / (banks x cycles)
    double averagePowerMw = 0.0;
};

/**
 * Telemetry section of a report: what the run's TelemetrySink recorded
 * (volume, not content — the content lives in the JSONL/trace files).
 * Filled by SystemReport::addTelemetry.
 */
struct TelemetryReport
{
    bool enabled = false;
    std::uint64_t threadSamples = 0;
    std::uint64_t channelSamples = 0;
    std::uint64_t decisionEvents = 0;
    std::uint64_t lifecycleRecords = 0;
    std::uint64_t droppedRecords = 0; //!< evicted by ring capacity
};

/**
 * DDR2 protocol-audit section of a report, filled in when the simulator
 * ran with SystemConfig::protocolCheck (all zeros/empty otherwise).
 */
struct ProtocolAuditReport
{
    bool audited = false;
    std::uint64_t commandsAudited = 0;
    std::uint64_t violations = 0;
    /** Per-constraint (name, count) tallies, non-zero entries only. */
    std::vector<std::pair<std::string, std::uint64_t>> byConstraint;
    /** Detailed one-line reports for the first recorded violations. */
    std::vector<std::string> details;
};

/** Everything a post-run analysis needs, in one value type. */
struct SystemReport
{
    Cycle measuredCycles = 0;
    std::string scheduler;
    std::vector<ThreadReport> threads;
    std::vector<ChannelReport> channels;
    ProtocolAuditReport protocol;
    TelemetryReport telemetry;

    /**
     * Simulator self-profile section (prof::ProfileReport), filled by
     * addProfile when the run carried a profiler. Disabled by default,
     * in which case print() emits nothing for it — the report goldens
     * are byte-identical for unprofiled runs.
     */
    prof::ProfileReport profile;

    /**
     * Gather a report from a finished simulation. @p threadNames
     * labels rows (falls back to "t<N>").
     */
    static SystemReport collect(const Simulator &sim,
                                const std::vector<std::string> &threadNames
                                = {});

    /** Fill the telemetry section from a run's sink. */
    void addTelemetry(const telemetry::TelemetrySink &sink);

    /** Fill the self-profile section from a run's profile report. */
    void addProfile(const prof::ProfileReport &report);

    /** Human-readable tables. */
    void print(std::FILE *out) const;

    /**
     * Write `<prefix>_threads.csv` and `<prefix>_channels.csv`.
     * Throws std::runtime_error on I/O failure.
     */
    void writeCsv(const std::string &prefix) const;
};

} // namespace tcm::sim
