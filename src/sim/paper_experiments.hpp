/**
 * @file
 * Shared paper-experiment drivers: the exact experiment grids behind
 * bench_fig4 / bench_table4 / bench_table6, factored out so the benches
 * and tools/claims run the *same* code path — a claims gate that
 * re-derived its own grid could silently drift from what the bench
 * prints.
 *
 * Each driver returns a structured results document (sim/results.hpp);
 * benches render their tables from it, tools/claims evaluates the
 * claim registry against it and diffs it with the committed goldens.
 * All grids fan out through sim::runMatrix, so results are
 * bit-identical at any --jobs level.
 */

#pragma once

#include "sim/results.hpp"
#include "sim/system_config.hpp"

namespace tcm::sim::paper {

/**
 * Figure 4 headline grid: the five paper schedulers over equal thirds
 * of 50/75/100%-intensity workloads (base seed 1). One row per
 * scheduler with metrics ws / ms / hs.
 */
results::ResultsDoc fig4(const SystemConfig &config,
                         const ExperimentScale &scale, int jobs = 0);

/**
 * Table 4 calibration: every synthetic benchmark clone run alone (seed
 * 99, probe on, 2x measure window). One row per clone with
 * target/measured/error triples for MPKI, RBL and BLP, plus a "worst"
 * summary row with the worst absolute errors.
 */
results::ResultsDoc table4(const SystemConfig &config,
                           const ExperimentScale &scale);

/**
 * Table 6 shuffling comparison: the four shuffling algorithms (plus
 * both insertion-shuffle readings) on the mixed-heterogeneity
 * population (seeds 6000/6500, base seed 13). One row per algorithm
 * with metrics ms_avg / ms_var.
 */
results::ResultsDoc table6(const SystemConfig &config,
                           const ExperimentScale &scale, int jobs = 0);

/**
 * Scheduler-zoo grid: the paper's headline baselines (FR-FCFS, ATLAS,
 * TCM) next to the championship ports (BLISS, GHT, FRFCFS-CP) and the
 * Tournament meta-scheduler, all on the exact fig4 workload population
 * (equal thirds of 50/75/100%-intensity workloads, base seed 1). One
 * row per scheduler (display names: "FR-FCFS", "ATLAS", "TCM", "BLISS",
 * "GHT", "FRFCFS-CP", "Tournament") with metrics ws / ms / hs — the
 * document behind bench_zoo and the zoo claims.
 */
results::ResultsDoc zoo(const SystemConfig &config,
                        const ExperimentScale &scale, int jobs = 0);

/**
 * Intra-run parallel stepping speedup (the BM_IntraRunParallel
 * measurement): one high-intensity TCM run on the paper's 24-core /
 * 4-channel system, repeated at 1, 2 and 4 worker lanes. One row per
 * worker count ("w1", "w2", "w4") with metrics seconds and speedup
 * (vs the w1 serial loop; 1.0 for w1 itself). Timing is best-of-two
 * per point so a cold first run does not distort the ratios, and every
 * parallel run's per-thread IPC vector is checked bit-identical to the
 * serial run's — divergence throws, so a timing claim can never pass
 * on a broken simulation.
 *
 * Always measured with the cycle-skip kernel on (the production
 * configuration the speedup claim is about), regardless of
 * @p config.cycleSkip, so the claim verdict is identical in the
 * per-cycle-oracle claims-gate run. @p config.intraRunParallel is
 * likewise overridden per point. All other @p config fields apply.
 */
results::ResultsDoc intraParallel(const SystemConfig &config,
                                  const ExperimentScale &scale);

/**
 * Interval-sampling validation (the bench_sampling measurement): the
 * fig4 grid run twice — full-length and interval-sampled (W:K windows
 * after a short warmup; sim/sampling.hpp) — with the sampled estimates
 * compared against the full-run values. One row per scheduler with
 * <metric>_full / <metric>_sampled / <metric>_relerr for ws, ms and hs,
 * plus a "summary" row carrying the claim subjects:
 *   ws_err_max / ms_err_max / hs_err_max  worst relative error,
 *   ms_err_max_bounded  worst MS error over the bounded-slowdown
 *     schedulers (excludes the scheduler with the largest full-run MS —
 *     ATLAS at every blessed scale — whose divergent starvation
 *     statistic has no finite short-horizon estimate; the claim band
 *     gates this one),
 *   fig4_claims_total / fig4_claims_failed  the fig4.* registry
 *     re-evaluated on the sampled document (ordering preservation),
 *   cycle_ratio  simulated cycles full / sampled (deterministic),
 *   speedup / seconds_full / seconds_sampled  wall-clock.
 *
 * Sampling parameters come from @p scale.sampling when enabled, else
 * the SamplingConfig defaults (30k warmup + 3x14k windows). When
 * @p fullFig4 is non-null it is used as the full-run leg (it must be a
 * fig4 document produced at @p scale with its wall-clock provenance
 * stamped — the claims gate reuses the grid it already ran); when null
 * the driver runs the full leg itself.
 *
 * Like intraParallel, the document carries wall-clock timings: it feeds
 * the sampling.* claims and is written out for inspection but is never
 * diffed against a golden baseline.
 */
results::ResultsDoc sampling(const SystemConfig &config,
                             const ExperimentScale &scale, int jobs = 0,
                             const results::ResultsDoc *fullFig4 = nullptr);

} // namespace tcm::sim::paper
