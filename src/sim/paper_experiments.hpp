/**
 * @file
 * Shared paper-experiment drivers: the exact experiment grids behind
 * bench_fig4 / bench_table4 / bench_table6, factored out so the benches
 * and tools/claims run the *same* code path — a claims gate that
 * re-derived its own grid could silently drift from what the bench
 * prints.
 *
 * Each driver returns a structured results document (sim/results.hpp);
 * benches render their tables from it, tools/claims evaluates the
 * claim registry against it and diffs it with the committed goldens.
 * All grids fan out through sim::runMatrix, so results are
 * bit-identical at any --jobs level.
 */

#pragma once

#include "sim/results.hpp"
#include "sim/system_config.hpp"

namespace tcm::sim::paper {

/**
 * Figure 4 headline grid: the five paper schedulers over equal thirds
 * of 50/75/100%-intensity workloads (base seed 1). One row per
 * scheduler with metrics ws / ms / hs.
 */
results::ResultsDoc fig4(const SystemConfig &config,
                         const ExperimentScale &scale, int jobs = 0);

/**
 * Table 4 calibration: every synthetic benchmark clone run alone (seed
 * 99, probe on, 2x measure window). One row per clone with
 * target/measured/error triples for MPKI, RBL and BLP, plus a "worst"
 * summary row with the worst absolute errors.
 */
results::ResultsDoc table4(const SystemConfig &config,
                           const ExperimentScale &scale);

/**
 * Table 6 shuffling comparison: the four shuffling algorithms (plus
 * both insertion-shuffle readings) on the mixed-heterogeneity
 * population (seeds 6000/6500, base seed 13). One row per algorithm
 * with metrics ms_avg / ms_var.
 */
results::ResultsDoc table6(const SystemConfig &config,
                           const ExperimentScale &scale, int jobs = 0);

} // namespace tcm::sim::paper
