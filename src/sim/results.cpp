#include "sim/results.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"
#include "common/numfmt.hpp"

namespace tcm::sim::results {

void
Row::set(const std::string &metric, double value)
{
    for (auto &[k, v] : metrics) {
        if (k == metric) {
            v = value;
            return;
        }
    }
    metrics.emplace_back(metric, value);
}

const double *
Row::find(const std::string &metric) const
{
    for (const auto &[k, v] : metrics)
        if (k == metric)
            return &v;
    return nullptr;
}

ResultsDoc::ResultsDoc(std::string benchName, const ExperimentScale &scale)
    : bench(std::move(benchName)),
      warmup(scale.warmup),
      measure(scale.measure),
      workloadsPerCategory(scale.workloadsPerCategory)
{
}

Row &
ResultsDoc::row(const std::string &series, const std::string &point)
{
    for (Row &r : rows)
        if (r.series == series && r.point == point)
            return r;
    rows.push_back(Row{series, point, {}});
    return rows.back();
}

void
ResultsDoc::set(const std::string &series, const std::string &metric,
                double value)
{
    row(series).set(metric, value);
}

void
ResultsDoc::setAt(const std::string &series, const std::string &point,
                  const std::string &metric, double value)
{
    row(series, point).set(metric, value);
}

const double *
ResultsDoc::find(const std::string &series, const std::string &point,
                 const std::string &metric) const
{
    for (const Row &r : rows)
        if (r.series == series && r.point == point)
            return r.find(metric);
    return nullptr;
}

namespace {

/**
 * Shared serializer behind toJson (pretty) and toJsonLine (compact): the
 * two forms differ only in whitespace, so one emitter guarantees they
 * can never drift apart in content.
 */
std::string
serializeDoc(const ResultsDoc &doc, bool pretty)
{
    const char *nl = pretty ? "\n" : "";
    const char *ind = pretty ? "  " : "";
    std::string out;
    out += "{";
    out += nl;
    out += ind;
    out += "\"schema_version\": " + std::to_string(doc.schemaVersion) + ",";
    out += nl;
    out += ind;
    out += "\"bench\": " + json::quote(doc.bench) + ",";
    out += nl;
    out += ind;
    out += "\"scale\": {\"warmup\": " +
           std::to_string(static_cast<unsigned long long>(doc.warmup)) +
           ", \"measure\": " +
           std::to_string(static_cast<unsigned long long>(doc.measure)) +
           ", \"workloads_per_category\": " +
           std::to_string(doc.workloadsPerCategory) + "},";
    out += nl;
    if (doc.wallSeconds > 0.0 || doc.intraWorkers > 0 ||
        doc.hostThreads > 0 || !doc.buildType.empty() ||
        doc.cycleSkip >= 0 || doc.jobsPerSec > 0.0 ||
        doc.cacheHitRate >= 0.0 || !doc.profileMetrics.empty()) {
        out += ind;
        out += "\"run\": {\"wall_seconds\": " +
               formatDouble(doc.wallSeconds) +
               ", \"intra_workers\": " + std::to_string(doc.intraWorkers);
        if (doc.hostThreads > 0)
            out += ", \"host_threads\": " + std::to_string(doc.hostThreads);
        if (!doc.buildType.empty())
            out += ", \"build_type\": " + json::quote(doc.buildType);
        if (doc.cycleSkip >= 0)
            out += std::string(", \"cycle_skip\": ") +
                   (doc.cycleSkip ? "true" : "false");
        if (doc.jobsPerSec > 0.0)
            out += ", \"jobs_per_sec\": " + formatDouble(doc.jobsPerSec);
        if (doc.cacheHitRate >= 0.0)
            out += ", \"cache_hit_rate\": " + formatDouble(doc.cacheHitRate);
        if (!doc.profileMetrics.empty()) {
            out += ", \"profile\": {";
            for (std::size_t m = 0; m < doc.profileMetrics.size(); ++m) {
                if (m)
                    out += ", ";
                double v = doc.profileMetrics[m].second;
                out += json::quote(doc.profileMetrics[m].first) + ": " +
                       (std::isfinite(v) ? formatDouble(v) : "null");
            }
            out += "}";
        }
        out += "},";
        out += nl;
    }
    out += ind;
    out += "\"rows\": [";
    for (std::size_t i = 0; i < doc.rows.size(); ++i) {
        const Row &r = doc.rows[i];
        if (i)
            out += ",";
        out += nl;
        if (pretty)
            out += "    ";
        out += "{\"series\": " + json::quote(r.series);
        if (!r.point.empty())
            out += ", \"point\": " + json::quote(r.point);
        out += ", \"metrics\": {";
        for (std::size_t m = 0; m < r.metrics.size(); ++m) {
            if (m)
                out += ", ";
            out += json::quote(r.metrics[m].first) + ": ";
            // JSON has no non-finite literals; null marks "not measured".
            double v = r.metrics[m].second;
            out += std::isfinite(v) ? formatDouble(v) : "null";
        }
        out += "}}";
    }
    if (!doc.rows.empty()) {
        out += nl;
        out += ind;
    }
    out += "]";
    out += nl;
    out += "}\n";
    return out;
}

} // namespace

std::string
ResultsDoc::toJson() const
{
    return serializeDoc(*this, /*pretty=*/true);
}

std::string
ResultsDoc::toJsonLine() const
{
    return serializeDoc(*this, /*pretty=*/false);
}

void
ResultsDoc::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        throw std::runtime_error("results: cannot write " + path);
    std::string text = toJson();
    std::fwrite(text.data(), 1, text.size(), f);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw std::runtime_error("results: write error on " + path);
}

ResultsDoc
ResultsDoc::fromJson(const std::string &text)
{
    json::Value root = json::parse(text);
    if (!root.isObject())
        throw std::runtime_error("results: document is not an object");

    ResultsDoc doc;
    doc.schemaVersion =
        static_cast<int>(root.numberOr("schema_version", -1));
    if (doc.schemaVersion != kSchemaVersion)
        throw std::runtime_error(
            "results: unsupported schema_version " +
            std::to_string(doc.schemaVersion) + " (expected " +
            std::to_string(kSchemaVersion) + ")");
    doc.bench = root.stringOr("bench", "");

    if (const json::Value *scale = root.find("scale")) {
        doc.warmup = static_cast<Cycle>(scale->numberOr("warmup", 0));
        doc.measure = static_cast<Cycle>(scale->numberOr("measure", 0));
        doc.workloadsPerCategory = static_cast<int>(
            scale->numberOr("workloads_per_category", 0));
    }

    if (const json::Value *run = root.find("run")) {
        doc.wallSeconds = run->numberOr("wall_seconds", 0.0);
        doc.intraWorkers = static_cast<int>(run->numberOr("intra_workers", 0));
        doc.hostThreads = static_cast<int>(run->numberOr("host_threads", 0));
        doc.buildType = run->stringOr("build_type", "");
        doc.jobsPerSec = run->numberOr("jobs_per_sec", 0.0);
        doc.cacheHitRate = run->numberOr("cache_hit_rate", -1.0);
        if (const json::Value *cs = run->find("cycle_skip")) {
            if (cs->kind == json::Value::Kind::Bool)
                doc.cycleSkip = cs->boolean ? 1 : 0;
        }
        if (const json::Value *prof = run->find("profile")) {
            if (prof->isObject())
                for (const auto &[k, v] : prof->object)
                    if (v.isNumber())
                        doc.profileMetrics.emplace_back(k, v.number);
        }
    }

    const json::Value *rows = root.find("rows");
    if (!rows || !rows->isArray())
        throw std::runtime_error("results: missing rows array");
    for (const json::Value &rowVal : rows->array) {
        if (!rowVal.isObject())
            throw std::runtime_error("results: row is not an object");
        Row r;
        r.series = rowVal.stringOr("series", "");
        r.point = rowVal.stringOr("point", "");
        if (const json::Value *metrics = rowVal.find("metrics")) {
            for (const auto &[k, v] : metrics->object) {
                if (v.isNumber())
                    r.metrics.emplace_back(k, v.number);
                else if (v.isNull())
                    r.metrics.emplace_back(
                        k, std::numeric_limits<double>::quiet_NaN());
                else
                    throw std::runtime_error(
                        "results: metric '" + k + "' is not a number");
            }
        }
        doc.rows.push_back(std::move(r));
    }
    return doc;
}

ResultsDoc
ResultsDoc::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("results: cannot read " + path);
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return fromJson(text.str());
    } catch (const std::runtime_error &e) {
        throw std::runtime_error(std::string(e.what()) + " in " + path);
    }
}

} // namespace tcm::sim::results
