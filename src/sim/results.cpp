#include "sim/results.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"
#include "common/numfmt.hpp"

namespace tcm::sim::results {

void
Row::set(const std::string &metric, double value)
{
    for (auto &[k, v] : metrics) {
        if (k == metric) {
            v = value;
            return;
        }
    }
    metrics.emplace_back(metric, value);
}

const double *
Row::find(const std::string &metric) const
{
    for (const auto &[k, v] : metrics)
        if (k == metric)
            return &v;
    return nullptr;
}

ResultsDoc::ResultsDoc(std::string benchName, const ExperimentScale &scale)
    : bench(std::move(benchName)),
      warmup(scale.warmup),
      measure(scale.measure),
      workloadsPerCategory(scale.workloadsPerCategory)
{
}

Row &
ResultsDoc::row(const std::string &series, const std::string &point)
{
    for (Row &r : rows)
        if (r.series == series && r.point == point)
            return r;
    rows.push_back(Row{series, point, {}});
    return rows.back();
}

void
ResultsDoc::set(const std::string &series, const std::string &metric,
                double value)
{
    row(series).set(metric, value);
}

void
ResultsDoc::setAt(const std::string &series, const std::string &point,
                  const std::string &metric, double value)
{
    row(series, point).set(metric, value);
}

const double *
ResultsDoc::find(const std::string &series, const std::string &point,
                 const std::string &metric) const
{
    for (const Row &r : rows)
        if (r.series == series && r.point == point)
            return r.find(metric);
    return nullptr;
}

std::string
ResultsDoc::toJson() const
{
    std::string out;
    out += "{\n";
    out += "  \"schema_version\": " + std::to_string(schemaVersion) + ",\n";
    out += "  \"bench\": " + json::quote(bench) + ",\n";
    out += "  \"scale\": {\"warmup\": " +
           std::to_string(static_cast<unsigned long long>(warmup)) +
           ", \"measure\": " +
           std::to_string(static_cast<unsigned long long>(measure)) +
           ", \"workloads_per_category\": " +
           std::to_string(workloadsPerCategory) + "},\n";
    if (wallSeconds > 0.0 || intraWorkers > 0 || hostThreads > 0 ||
        !buildType.empty() || cycleSkip >= 0 || !profileMetrics.empty()) {
        out += "  \"run\": {\"wall_seconds\": " + formatDouble(wallSeconds) +
               ", \"intra_workers\": " + std::to_string(intraWorkers);
        if (hostThreads > 0)
            out += ", \"host_threads\": " + std::to_string(hostThreads);
        if (!buildType.empty())
            out += ", \"build_type\": " + json::quote(buildType);
        if (cycleSkip >= 0)
            out += std::string(", \"cycle_skip\": ") +
                   (cycleSkip ? "true" : "false");
        if (!profileMetrics.empty()) {
            out += ", \"profile\": {";
            for (std::size_t m = 0; m < profileMetrics.size(); ++m) {
                if (m)
                    out += ", ";
                double v = profileMetrics[m].second;
                out += json::quote(profileMetrics[m].first) + ": " +
                       (std::isfinite(v) ? formatDouble(v) : "null");
            }
            out += "}";
        }
        out += "},\n";
    }
    out += "  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"series\": " + json::quote(r.series);
        if (!r.point.empty())
            out += ", \"point\": " + json::quote(r.point);
        out += ", \"metrics\": {";
        for (std::size_t m = 0; m < r.metrics.size(); ++m) {
            if (m)
                out += ", ";
            out += json::quote(r.metrics[m].first) + ": ";
            // JSON has no non-finite literals; null marks "not measured".
            double v = r.metrics[m].second;
            out += std::isfinite(v) ? formatDouble(v) : "null";
        }
        out += "}}";
    }
    out += rows.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void
ResultsDoc::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        throw std::runtime_error("results: cannot write " + path);
    std::string text = toJson();
    std::fwrite(text.data(), 1, text.size(), f);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw std::runtime_error("results: write error on " + path);
}

ResultsDoc
ResultsDoc::fromJson(const std::string &text)
{
    json::Value root = json::parse(text);
    if (!root.isObject())
        throw std::runtime_error("results: document is not an object");

    ResultsDoc doc;
    doc.schemaVersion =
        static_cast<int>(root.numberOr("schema_version", -1));
    if (doc.schemaVersion != kSchemaVersion)
        throw std::runtime_error(
            "results: unsupported schema_version " +
            std::to_string(doc.schemaVersion) + " (expected " +
            std::to_string(kSchemaVersion) + ")");
    doc.bench = root.stringOr("bench", "");

    if (const json::Value *scale = root.find("scale")) {
        doc.warmup = static_cast<Cycle>(scale->numberOr("warmup", 0));
        doc.measure = static_cast<Cycle>(scale->numberOr("measure", 0));
        doc.workloadsPerCategory = static_cast<int>(
            scale->numberOr("workloads_per_category", 0));
    }

    if (const json::Value *run = root.find("run")) {
        doc.wallSeconds = run->numberOr("wall_seconds", 0.0);
        doc.intraWorkers = static_cast<int>(run->numberOr("intra_workers", 0));
        doc.hostThreads = static_cast<int>(run->numberOr("host_threads", 0));
        doc.buildType = run->stringOr("build_type", "");
        if (const json::Value *cs = run->find("cycle_skip")) {
            if (cs->kind == json::Value::Kind::Bool)
                doc.cycleSkip = cs->boolean ? 1 : 0;
        }
        if (const json::Value *prof = run->find("profile")) {
            if (prof->isObject())
                for (const auto &[k, v] : prof->object)
                    if (v.isNumber())
                        doc.profileMetrics.emplace_back(k, v.number);
        }
    }

    const json::Value *rows = root.find("rows");
    if (!rows || !rows->isArray())
        throw std::runtime_error("results: missing rows array");
    for (const json::Value &rowVal : rows->array) {
        if (!rowVal.isObject())
            throw std::runtime_error("results: row is not an object");
        Row r;
        r.series = rowVal.stringOr("series", "");
        r.point = rowVal.stringOr("point", "");
        if (const json::Value *metrics = rowVal.find("metrics")) {
            for (const auto &[k, v] : metrics->object) {
                if (v.isNumber())
                    r.metrics.emplace_back(k, v.number);
                else if (v.isNull())
                    r.metrics.emplace_back(
                        k, std::numeric_limits<double>::quiet_NaN());
                else
                    throw std::runtime_error(
                        "results: metric '" + k + "' is not a number");
            }
        }
        doc.rows.push_back(std::move(r));
    }
    return doc;
}

ResultsDoc
ResultsDoc::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("results: cannot read " + path);
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return fromJson(text.str());
    } catch (const std::runtime_error &e) {
        throw std::runtime_error(std::string(e.what()) + " in " + path);
    }
}

} // namespace tcm::sim::results
