#include "sim/sweepd.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/hash.hpp"
#include "common/numfmt.hpp"
#include "common/thread_pool.hpp"
#include "sim/results.hpp"
#include "workload/mixes.hpp"

namespace fs = std::filesystem;

namespace tcm::sim::sweepd {

namespace {

constexpr const char *kManifestMagic = "tcmsim-manifest v1";
constexpr const char *kCheckpointMagic = "tcmsim-sweepd-ckpt v1";

std::vector<std::string>
splitWords(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string w;
    while (in >> w)
        out.push_back(w);
    return out;
}

bool
parseU64(const std::string &s, std::uint64_t *out)
{
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
    return ec == std::errc() && p == s.data() + s.size();
}

bool
parseInt(const std::string &s, int *out)
{
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
    return ec == std::errc() && p == s.data() + s.size();
}

bool
parseDouble(const std::string &s, double *out)
{
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
    return ec == std::errc() && p == s.data() + s.size();
}

/** The deterministic mix a job denotes (manifest-content independent). */
std::vector<workload::ThreadProfile>
mixForJob(const Manifest &m, const JobSpec &job)
{
    // The workloadSet convention of the batch drivers: the intensity
    // selects a seed family, the index an element of it.
    std::uint64_t base =
        m.workloadSeed + static_cast<std::uint64_t>(job.intensity * 1000);
    return workload::randomMix(
        m.cores, job.intensity,
        base + 1000003ULL * static_cast<std::uint64_t>(job.mixIndex + 1));
}

/** Stable stream identity of a job (the record's point key). */
std::string
pointOf(const JobSpec &job)
{
    return job.protocol + "/i" + formatDouble(job.intensity) + "/w" +
           std::to_string(job.mixIndex) + "/s" +
           std::to_string(job.seed);
}

struct Checkpoint
{
    std::uint64_t manifestHash = 0;
    std::uint64_t emitted = 0;
    std::uint64_t offset = 0;
};

bool
readCheckpoint(const std::string &path, Checkpoint *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line) || line != kCheckpointMagic)
        return false;
    std::string tag, value;
    std::uint64_t fields[3];
    const char *tags[3] = {"manifest", "emitted", "offset"};
    for (int i = 0; i < 3; ++i) {
        if (!std::getline(in, line))
            return false;
        auto words = splitWords(line);
        if (words.size() != 2 || words[0] != tags[i])
            return false;
        if (i == 0) {
            auto [p, ec] =
                std::from_chars(words[1].data(),
                                words[1].data() + words[1].size(),
                                fields[i], 16);
            if (ec != std::errc() ||
                p != words[1].data() + words[1].size())
                return false;
        } else if (!parseU64(words[1], &fields[i]))
            return false;
    }
    out->manifestHash = fields[0];
    out->emitted = fields[1];
    out->offset = fields[2];
    return true;
}

void
writeCheckpoint(const std::string &path, const Checkpoint &ckpt)
{
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(ckpt.manifestHash));
    std::string text = std::string(kCheckpointMagic) + "\n" +
                       "manifest " + hex + "\n" + "emitted " +
                       std::to_string(ckpt.emitted) + "\n" + "offset " +
                       std::to_string(ckpt.offset) + "\n";
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        throw std::runtime_error("sweepd: cannot write " + tmp);
    std::fwrite(text.data(), 1, text.size(), f);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad || std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("sweepd: checkpoint write failed for " +
                                 path);
}

/** Per-protocol simulation context: config + persistent alone cache. */
struct CacheSlot
{
    SystemConfig config;
    std::unique_ptr<AloneIpcCache> cache;
    std::string storePath;
    std::size_t savedEntries = 0; //!< store size at last save/load
};

} // namespace

ExperimentScale
Manifest::scale() const
{
    ExperimentScale s;
    s.warmup = warmup;
    s.measure = measure;
    s.workloadsPerCategory = 0; // manifests enumerate jobs explicitly
    s.sampling = sampling;
    return s;
}

bool
Manifest::parse(const std::string &text, Manifest *out, std::string *error)
{
    auto fail = [&](int lineNo, const std::string &why) {
        if (error)
            *error = "manifest line " + std::to_string(lineNo) + ": " + why;
        return false;
    };

    Manifest m;
    m.textHash = fnv1a64(text);

    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    bool sawMagic = false;
    while (std::getline(in, line)) {
        ++lineNo;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        auto words = splitWords(line);
        if (words.empty())
            continue;
        if (!sawMagic) {
            if (words.size() != 2 || words[0] + " " + words[1] != kManifestMagic)
                return fail(lineNo, "expected header '" +
                                        std::string(kManifestMagic) + "'");
            sawMagic = true;
            continue;
        }
        const std::string &key = words[0];
        if (key == "job") {
            if (words.size() != 6)
                return fail(lineNo,
                            "expected 'job SCHEDULER PROTOCOL INTENSITY "
                            "MIX-INDEX SEED'");
            JobSpec job;
            job.scheduler = words[1];
            job.protocol = words[2];
            sched::SpecLookup lookup = sched::specByName(job.scheduler);
            if (!lookup.ok)
                return fail(lineNo, lookup.error);
            {
                SystemConfig probe;
                std::string err = probe.selectProtocol(job.protocol);
                if (!err.empty())
                    return fail(lineNo, err);
            }
            if (!parseDouble(words[3], &job.intensity) ||
                job.intensity < 0.0 || job.intensity > 1.0)
                return fail(lineNo, "intensity must be in [0,1]");
            if (!parseInt(words[4], &job.mixIndex) || job.mixIndex < 0)
                return fail(lineNo, "mix index must be >= 0");
            if (!parseU64(words[5], &job.seed))
                return fail(lineNo, "bad seed");
            m.jobs.push_back(std::move(job));
            continue;
        }
        if (words.size() != 2)
            return fail(lineNo, "expected '" + key + " VALUE'");
        const std::string &value = words[1];
        std::uint64_t u = 0;
        if (key == "cores") {
            if (!parseInt(value, &m.cores) || m.cores < 1)
                return fail(lineNo, "bad cores");
        } else if (key == "channels") {
            if (!parseInt(value, &m.channels) || m.channels < 1)
                return fail(lineNo, "bad channels");
        } else if (key == "warmup") {
            if (!parseU64(value, &u))
                return fail(lineNo, "bad warmup");
            m.warmup = static_cast<Cycle>(u);
        } else if (key == "cycles") {
            if (!parseU64(value, &u) || u == 0)
                return fail(lineNo, "bad cycles");
            m.measure = static_cast<Cycle>(u);
        } else if (key == "workload-seed") {
            if (!parseU64(value, &m.workloadSeed))
                return fail(lineNo, "bad workload-seed");
        } else if (key == "sample") {
            std::string err;
            m.sampling = SamplingConfig::parse(value, &err);
            if (!m.sampling.enabled)
                return fail(lineNo, err);
        } else {
            return fail(lineNo, "unknown directive '" + key + "'");
        }
    }
    if (!sawMagic)
        return fail(1, "empty manifest (missing header)");
    if (m.jobs.empty())
        return fail(lineNo, "manifest has no jobs");
    *out = std::move(m);
    return true;
}

Server::Server(Options options) : options_(std::move(options)) {}

RunOutcome
Server::runManifest(const std::string &manifestPath,
                    const std::string &outPath)
{
    RunOutcome outcome;
    auto log = [&](const std::string &msg) {
        if (options_.log)
            options_.log(msg);
    };
    auto failed = [&](const std::string &why) {
        outcome.ok = false;
        outcome.error = why;
        log("sweepd: " + why);
        return outcome;
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::string text;
    {
        std::ifstream in(manifestPath, std::ios::binary);
        if (!in)
            return failed("cannot read manifest " + manifestPath);
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }
    Manifest manifest;
    std::string parseError;
    if (!Manifest::parse(text, &manifest, &parseError))
        return failed(parseError);

    try {
        fs::create_directories(options_.stateDir);
        fs::create_directories(fs::path(outPath).parent_path().empty()
                                   ? fs::path(".")
                                   : fs::path(outPath).parent_path());
    } catch (const fs::filesystem_error &e) {
        return failed(std::string("cannot create directories: ") + e.what());
    }

    const ExperimentScale scale = manifest.scale();

    // -- checkpoint/resume ---------------------------------------------------
    const std::string ckptPath = outPath + ".ckpt";
    Checkpoint ckpt;
    std::uint64_t next = 0;
    if (readCheckpoint(ckptPath, &ckpt) &&
        ckpt.manifestHash == manifest.textHash &&
        ckpt.emitted <= manifest.jobs.size() && fs::exists(outPath) &&
        fs::file_size(outPath) >= ckpt.offset) {
        // Drop any bytes past the checkpoint: records written after it
        // were not durably accounted, so the restart re-runs their jobs
        // and re-emits identical bytes.
        fs::resize_file(outPath, ckpt.offset);
        next = ckpt.emitted;
        outcome.resumed = true;
        log("sweepd: resuming " + manifestPath + " at job " +
            std::to_string(next) + "/" +
            std::to_string(manifest.jobs.size()));
    } else {
        std::FILE *f = std::fopen(outPath.c_str(), "w"); // truncate
        if (!f)
            return failed("cannot write " + outPath);
        std::fclose(f);
        ckpt = Checkpoint{manifest.textHash, 0, 0};
    }

    std::FILE *stream = std::fopen(outPath.c_str(), "ab");
    if (!stream)
        return failed("cannot append to " + outPath);

    // -- persistent alone-IPC caches, one per distinct protocol -------------
    std::map<std::string, CacheSlot> slots;
    for (const JobSpec &job : manifest.jobs) {
        if (slots.count(job.protocol))
            continue;
        CacheSlot slot;
        slot.config.numCores = manifest.cores;
        slot.config.numChannels = manifest.channels;
        slot.config.selectProtocol(job.protocol); // validated at parse
        slot.cache = std::make_unique<AloneIpcCache>(
            slot.config, scale.effectiveWarmup(), scale.effectiveMeasure());
        char hex[32];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(
                          slot.cache->fingerprint()));
        slot.storePath = options_.stateDir + "/alone-" + hex + ".cache";
        AloneIpcCache::LoadResult loaded =
            slot.cache->loadFromFile(slot.storePath);
        if (loaded.ok) {
            slot.savedEntries = loaded.loaded;
            log("sweepd: alone store " + slot.storePath + ": " +
                std::to_string(loaded.loaded) + " entries");
        } else if (fs::exists(slot.storePath)) {
            // A store that exists but does not load is stale or damaged;
            // denominators recompute from scratch, which is always safe.
            log("sweepd: alone store rejected (" + loaded.message +
                "); recomputing");
        }
        slots.emplace(job.protocol, std::move(slot));
    }

    ThreadPool pool(options_.jobs);
    const std::size_t batchSize =
        options_.batch > 0 ? static_cast<std::size_t>(options_.batch)
                           : static_cast<std::size_t>(pool.jobs()) * 4;
    const std::uint64_t total = manifest.jobs.size();
    std::uint64_t batches = 0;
    bool stopped = false;

    while (next < total) {
        if (options_.stopAfter != 0 &&
            outcome.emittedThisSession >= options_.stopAfter) {
            stopped = true;
            break;
        }
        std::size_t count = std::min<std::size_t>(batchSize, total - next);
        if (options_.stopAfter != 0)
            count = std::min<std::size_t>(
                count, options_.stopAfter - outcome.emittedThisSession);

        // Prewarm denominators per protocol so the batch proper runs
        // against read-only caches (misses parallelize here instead of
        // serializing behind per-key latches mid-run).
        {
            std::map<std::string,
                     std::vector<std::vector<workload::ThreadProfile>>>
                byProtocol;
            for (std::size_t i = 0; i < count; ++i) {
                const JobSpec &job = manifest.jobs[next + i];
                byProtocol[job.protocol].push_back(
                    mixForJob(manifest, job));
            }
            for (auto &[protocol, mixes] : byProtocol)
                slots.at(protocol).cache->prewarm(mixes, pool);
        }

        std::vector<std::string> records(count);
        try {
            pool.parallelFor(count, [&](std::size_t i) {
                const JobSpec &job = manifest.jobs[next + i];
                CacheSlot &slot = slots.at(job.protocol);
                sched::SpecLookup lookup =
                    sched::specByName(job.scheduler);
                RunResult r = runWorkload(slot.config,
                                          mixForJob(manifest, job),
                                          lookup.spec, scale,
                                          *slot.cache, job.seed);
                results::ResultsDoc doc("sweepd", scale);
                results::Row &row =
                    doc.row(job.scheduler, pointOf(job));
                row.set("ws", r.metrics.weightedSpeedup);
                row.set("ms", r.metrics.maxSlowdown);
                row.set("hs", r.metrics.harmonicSpeedup);
                if (!r.ipcRse.empty())
                    row.set("rse_max",
                            *std::max_element(r.ipcRse.begin(),
                                              r.ipcRse.end()));
                records[i] = doc.toJsonLine();
            });
        } catch (const std::exception &e) {
            std::fclose(stream);
            return failed(std::string("job failed: ") + e.what());
        }

        // Emit the batch in manifest order, then checkpoint past it.
        for (const std::string &record : records)
            std::fwrite(record.data(), 1, record.size(), stream);
        if (std::fflush(stream) != 0 || std::ferror(stream)) {
            std::fclose(stream);
            return failed("stream write failed for " + outPath);
        }
        next += count;
        outcome.emittedThisSession += count;
        ++batches;

        // Persist any newly computed denominators before the checkpoint
        // references work that depended on them.
        for (auto &[protocol, slot] : slots) {
            if (slot.cache->size() == slot.savedEntries)
                continue;
            try {
                slot.cache->saveToFile(slot.storePath);
                slot.savedEntries = slot.cache->size();
            } catch (const std::exception &e) {
                log(std::string("sweepd: alone store save failed: ") +
                    e.what());
            }
        }

        ckpt.emitted = next;
        ckpt.offset = static_cast<std::uint64_t>(std::ftell(stream));
        try {
            writeCheckpoint(ckptPath, ckpt);
        } catch (const std::exception &e) {
            std::fclose(stream);
            return failed(e.what());
        }
        log("sweepd: " + std::to_string(next) + "/" +
            std::to_string(total) + " jobs emitted");
    }
    std::fclose(stream);

    outcome.ok = true;
    outcome.finished = !stopped && next == total;
    outcome.emitted = next;
    for (const auto &[protocol, slot] : slots) {
        outcome.cacheHits += slot.cache->hits();
        outcome.cacheMisses += slot.cache->misses();
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    outcome.wallSeconds = wall;
    outcome.jobsPerSec =
        wall > 0.0 ? static_cast<double>(outcome.emittedThisSession) / wall
                   : 0.0;

    // Throughput lives in the summary document's run-provenance block,
    // never in the stream: the stream must be byte-reproducible, the
    // summary is descriptive metadata (claims::diff ignores run blocks).
    results::ResultsDoc summary("sweepd-summary", scale);
    summary.wallSeconds = wall;
    summary.jobsPerSec = outcome.jobsPerSec;
    const std::uint64_t lookups = outcome.cacheHits + outcome.cacheMisses;
    if (lookups > 0)
        summary.cacheHitRate = static_cast<double>(outcome.cacheHits) /
                               static_cast<double>(lookups);
    results::Row &row = summary.row("daemon");
    row.set("jobs_total", static_cast<double>(total));
    row.set("jobs_emitted", static_cast<double>(next));
    row.set("jobs_this_session",
            static_cast<double>(outcome.emittedThisSession));
    row.set("batches", static_cast<double>(batches));
    row.set("resumed", outcome.resumed ? 1.0 : 0.0);
    row.set("finished", outcome.finished ? 1.0 : 0.0);
    row.set("cache_hits", static_cast<double>(outcome.cacheHits));
    row.set("cache_misses", static_cast<double>(outcome.cacheMisses));
    try {
        summary.save(outPath + ".summary.json");
    } catch (const std::exception &e) {
        log(std::string("sweepd: summary save failed: ") + e.what());
    }
    return outcome;
}

int
Server::drainSpool()
{
    auto log = [&](const std::string &msg) {
        if (options_.log)
            options_.log(msg);
    };
    const fs::path spool = fs::path(options_.stateDir) / "spool";
    const fs::path results = fs::path(options_.stateDir) / "results";
    const fs::path done = fs::path(options_.stateDir) / "done";
    const fs::path failedDir = fs::path(options_.stateDir) / "failed";
    std::error_code ec;
    fs::create_directories(spool, ec);
    fs::create_directories(results, ec);
    fs::create_directories(done, ec);
    fs::create_directories(failedDir, ec);

    std::vector<fs::path> manifests;
    for (const auto &entry : fs::directory_iterator(spool, ec))
        if (entry.is_regular_file() &&
            entry.path().extension() == ".manifest")
            manifests.push_back(entry.path());
    std::sort(manifests.begin(), manifests.end());

    int finished = 0;
    for (const fs::path &m : manifests) {
        const std::string stem = m.stem().string();
        RunOutcome outcome =
            runManifest(m.string(), (results / (stem + ".jsonl")).string());
        if (!outcome.ok) {
            // A manifest that cannot run (parse error, I/O) would wedge
            // the spool if left in place; park it for inspection.
            fs::rename(m, failedDir / m.filename(), ec);
            log("sweepd: " + stem + " failed: " + outcome.error);
        } else if (outcome.finished) {
            fs::rename(m, done / m.filename(), ec);
            ++finished;
            log("sweepd: " + stem + " finished (" +
                std::to_string(outcome.emitted) + " jobs)");
        } else {
            // Interrupted by stopAfter: leave it spooled; the next
            // drain resumes from its checkpoint.
            log("sweepd: " + stem + " interrupted at " +
                std::to_string(outcome.emitted) + " jobs");
        }
        if (options_.stopAfter != 0)
            break; // one interruptible manifest per drain in test mode
    }
    return finished;
}

} // namespace tcm::sim::sweepd
