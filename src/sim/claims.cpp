#include "sim/claims.hpp"

#include <cmath>
#include <limits>

#include "common/numfmt.hpp"

namespace tcm::sim::claims {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/** NaN-aware equality for diff(): null metrics compare equal. */
bool
withinTolerance(double fresh, double base, double relTol, double absTol)
{
    if (std::isnan(fresh) && std::isnan(base))
        return true;
    if (std::isnan(fresh) != std::isnan(base))
        return false;
    double bound = std::max(absTol, relTol * std::fabs(base));
    return std::fabs(fresh - base) <= bound;
}

std::string
flatKey(const results::ResultsDoc &doc, const results::Row &row,
        const std::string &metric)
{
    return ResultSet::key(doc.bench, row.series, row.point, metric);
}

} // namespace

void
ResultSet::add(const results::ResultsDoc &doc)
{
    for (const results::Row &row : doc.rows)
        for (const auto &[metric, value] : row.metrics)
            values_[key(doc.bench, row.series, row.point, metric)] = value;
}

void
ResultSet::set(const std::string &key, double value)
{
    values_[key] = value;
}

const double *
ResultSet::find(const std::string &key) const
{
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
}

std::string
ResultSet::key(const std::string &bench, const std::string &series,
               const std::string &point, const std::string &metric)
{
    std::string k = bench + "/" + series;
    if (!point.empty())
        k += "@" + point;
    return k + "/" + metric;
}

Claim
Claim::atLeast(std::string id, std::string description, std::string subject,
               std::vector<std::string> references, double epsilon)
{
    Claim c;
    c.id = std::move(id);
    c.description = std::move(description);
    c.kind = Kind::AtLeast;
    c.subject = std::move(subject);
    c.references = std::move(references);
    c.epsilon = epsilon;
    return c;
}

Claim
Claim::atMost(std::string id, std::string description, std::string subject,
              std::vector<std::string> references, double epsilon)
{
    Claim c = atLeast(std::move(id), std::move(description),
                      std::move(subject), std::move(references), epsilon);
    c.kind = Kind::AtMost;
    return c;
}

Claim
Claim::ratioAtLeast(std::string id, std::string description,
                    std::string subject,
                    std::vector<std::string> references, double factor)
{
    Claim c = atLeast(std::move(id), std::move(description),
                      std::move(subject), std::move(references));
    c.kind = Kind::RatioAtLeast;
    c.factor = factor;
    return c;
}

Claim
Claim::ratioAtMost(std::string id, std::string description,
                   std::string subject,
                   std::vector<std::string> references, double factor)
{
    Claim c = ratioAtLeast(std::move(id), std::move(description),
                           std::move(subject), std::move(references),
                           factor);
    c.kind = Kind::RatioAtMost;
    return c;
}

Claim
Claim::band(std::string id, std::string description, std::string subject,
            double lo, double hi)
{
    Claim c;
    c.id = std::move(id);
    c.description = std::move(description);
    c.kind = Kind::Band;
    c.subject = std::move(subject);
    c.lo = lo;
    c.hi = hi;
    return c;
}

Outcome
evaluate(const Claim &claim, const ResultSet &set)
{
    Outcome out;
    out.id = claim.id;
    out.margin = kNaN;

    const double *subject = set.find(claim.subject);
    if (!subject) {
        out.status = Status::Missing;
        out.detail = "missing key: " + claim.subject;
        return out;
    }

    if (claim.kind == Kind::Band) {
        double slack = std::min(*subject - claim.lo, claim.hi - *subject);
        out.margin = slack;
        out.status = slack >= 0 ? Status::Pass : Status::Fail;
        out.detail = formatDouble(claim.lo) + " <= " +
                     formatDouble(*subject) + " <= " +
                     formatDouble(claim.hi);
        return out;
    }

    // Relational kinds: the claim must hold against EVERY reference;
    // report the tightest one.
    double worstSlack = std::numeric_limits<double>::infinity();
    std::string worstDetail;
    for (const std::string &refKey : claim.references) {
        const double *ref = set.find(refKey);
        if (!ref) {
            out.status = Status::Missing;
            out.detail = "missing key: " + refKey;
            return out;
        }
        double slack = 0.0;
        std::string rel;
        switch (claim.kind) {
          case Kind::AtLeast:
            slack = *subject - (*ref - claim.epsilon);
            rel = formatDouble(*subject) + " >= " + formatDouble(*ref) +
                  " - " + formatDouble(claim.epsilon);
            break;
          case Kind::AtMost:
            slack = (*ref + claim.epsilon) - *subject;
            rel = formatDouble(*subject) + " <= " + formatDouble(*ref) +
                  " + " + formatDouble(claim.epsilon);
            break;
          case Kind::RatioAtLeast:
            slack = *subject - claim.factor * *ref;
            rel = formatDouble(*subject) + " >= " +
                  formatDouble(claim.factor) + " * " + formatDouble(*ref);
            break;
          case Kind::RatioAtMost:
            slack = claim.factor * *ref - *subject;
            rel = formatDouble(*subject) + " <= " +
                  formatDouble(claim.factor) + " * " + formatDouble(*ref);
            break;
          case Kind::Band: break; // handled above
        }
        if (std::isnan(slack) || slack < worstSlack) {
            worstSlack = slack;
            worstDetail = rel + " [" + refKey + "]";
            if (std::isnan(slack))
                break;
        }
    }
    if (claim.references.empty()) {
        out.status = Status::Missing;
        out.detail = "claim has no references";
        return out;
    }
    out.margin = worstSlack;
    // A NaN subject or reference (an unmeasured metric) can never
    // satisfy a relation: NaN slack fails.
    out.status = worstSlack >= 0 ? Status::Pass : Status::Fail;
    out.detail = worstDetail;
    return out;
}

std::vector<Outcome>
evaluateAll(const std::vector<Claim> &registry, const ResultSet &set)
{
    std::vector<Outcome> outcomes;
    outcomes.reserve(registry.size());
    for (const Claim &claim : registry)
        outcomes.push_back(evaluate(claim, set));
    return outcomes;
}

int
failureCount(const std::vector<Outcome> &outcomes)
{
    int failures = 0;
    for (const Outcome &o : outcomes)
        if (o.status != Status::Pass)
            ++failures;
    return failures;
}

void
printVerdictTable(const std::vector<Claim> &registry,
                  const std::vector<Outcome> &outcomes, std::FILE *out)
{
    std::fprintf(out, "%-7s %-34s %s\n", "verdict", "claim",
                 "measured vs bound");
    std::fprintf(out, "%-7s %-34s %s\n", "-------", std::string(34, '-').c_str(),
                 "-----------------");
    int pass = 0, fail = 0, missing = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const Outcome &o = outcomes[i];
        const char *verdict = "PASS";
        if (o.status == Status::Fail) {
            verdict = "FAIL";
            ++fail;
        } else if (o.status == Status::Missing) {
            verdict = "MISS";
            ++missing;
        } else {
            ++pass;
        }
        std::fprintf(out, "%-7s %-34s %s\n", verdict, o.id.c_str(),
                     o.detail.c_str());
        if (o.status != Status::Pass && i < registry.size())
            std::fprintf(out, "        `- %s\n",
                         registry[i].description.c_str());
    }
    std::fprintf(out,
                 "\n%zu claim(s): %d passed, %d failed, %d missing key\n",
                 outcomes.size(), pass, fail, missing);
}

std::vector<std::string>
diff(const results::ResultsDoc &fresh, const results::ResultsDoc &baseline,
     double relTol, double absTol)
{
    std::vector<std::string> lines;

    if (fresh.bench != baseline.bench)
        lines.push_back("bench name: fresh '" + fresh.bench +
                        "' vs baseline '" + baseline.bench + "'");
    if (fresh.warmup != baseline.warmup ||
        fresh.measure != baseline.measure ||
        fresh.workloadsPerCategory != baseline.workloadsPerCategory)
        lines.push_back(
            "scale mismatch: fresh " +
            std::to_string(static_cast<unsigned long long>(fresh.warmup)) +
            "/" +
            std::to_string(static_cast<unsigned long long>(fresh.measure)) +
            "/" + std::to_string(fresh.workloadsPerCategory) +
            " vs baseline " +
            std::to_string(
                static_cast<unsigned long long>(baseline.warmup)) +
            "/" +
            std::to_string(
                static_cast<unsigned long long>(baseline.measure)) +
            "/" + std::to_string(baseline.workloadsPerCategory));

    // Baseline -> fresh: every golden metric must still exist and match.
    for (const results::Row &row : baseline.rows) {
        for (const auto &[metric, baseVal] : row.metrics) {
            const double *freshVal =
                fresh.find(row.series, row.point, metric);
            if (!freshVal) {
                lines.push_back("missing in fresh results: " +
                                flatKey(baseline, row, metric));
            } else if (!withinTolerance(*freshVal, baseVal, relTol,
                                        absTol)) {
                lines.push_back(
                    flatKey(baseline, row, metric) + ": fresh " +
                    formatDouble(*freshVal) + " vs baseline " +
                    formatDouble(baseVal) + " (tol max(" +
                    formatDouble(absTol) + ", " + formatDouble(relTol) +
                    "*|base|))");
            }
        }
    }

    // Fresh -> baseline: new metrics must be regolded, not slip past.
    for (const results::Row &row : fresh.rows)
        for (const auto &[metric, value] : row.metrics)
            if (!baseline.find(row.series, row.point, metric))
                lines.push_back("not in baseline (regold?): " +
                                flatKey(fresh, row, metric));

    return lines;
}

// ---------------------------------------------------------------------------
// The registered paper claims
// ---------------------------------------------------------------------------

namespace {

std::string
fig4Key(const std::string &scheduler, const std::string &metric)
{
    return ResultSet::key("fig4", scheduler, "", metric);
}

std::string
zooKey(const std::string &scheduler, const std::string &metric)
{
    return ResultSet::key("zoo", scheduler, "", metric);
}

} // namespace

std::vector<Claim>
paperClaims()
{
    std::vector<Claim> claims;

    const std::vector<std::string> kPriorsWs = {
        fig4Key("FR-FCFS", "ws"), fig4Key("STFM", "ws"),
        fig4Key("PAR-BS", "ws")};
    const std::vector<std::string> kPriorsMs = {
        fig4Key("FR-FCFS", "ms"), fig4Key("STFM", "ms"),
        fig4Key("ATLAS", "ms")};

    // -- Figure 4: the throughput/fairness Pareto frontier ------------------
    claims.push_back(Claim::atLeast(
        "fig4.atlas_ws_leader",
        "ATLAS has the highest weighted speedup of all five schedulers "
        "(paper Fig. 4: best prior throughput, TCM within a few %)",
        fig4Key("ATLAS", "ws"),
        {fig4Key("FR-FCFS", "ws"), fig4Key("STFM", "ws"),
         fig4Key("PAR-BS", "ws"), fig4Key("TCM", "ws")},
        /*epsilon=*/0.0));
    claims.push_back(Claim::atLeast(
        "fig4.tcm_ws_vs_nonatlas",
        "TCM outperforms every non-ATLAS baseline on weighted speedup "
        "(paper Fig. 4: +7.6% over PAR-BS)",
        fig4Key("TCM", "ws"), kPriorsWs, /*epsilon=*/0.0));
    claims.push_back(Claim::ratioAtLeast(
        "fig4.tcm_ws_near_atlas",
        "TCM's weighted speedup stays within 10% of ATLAS's "
        "(paper Fig. 4: TCM +4.6% over ATLAS; ours trails slightly)",
        fig4Key("TCM", "ws"), {fig4Key("ATLAS", "ws")}, /*factor=*/0.90));
    claims.push_back(Claim::ratioAtMost(
        "fig4.tcm_ms_vs_atlas",
        "TCM's maximum slowdown is at most 0.85x ATLAS's "
        "(paper Fig. 4: -38.6%)",
        fig4Key("TCM", "ms"), {fig4Key("ATLAS", "ms")}, /*factor=*/0.85));
    claims.push_back(Claim::atMost(
        "fig4.parbs_ms_most_fair",
        "PAR-BS is (within 0.5) the most fair prior scheduler "
        "(paper Fig. 1/4: PAR-BS most fair; FR-FCFS runs it close here)",
        fig4Key("PAR-BS", "ms"), kPriorsMs, /*epsilon=*/0.5));
    claims.push_back(Claim::ratioAtLeast(
        "fig4.tcm_hs_floor",
        "TCM's harmonic speedup is within 12% of every baseline's "
        "(fairness-weighted throughput does not collapse)",
        fig4Key("TCM", "hs"),
        {fig4Key("FR-FCFS", "hs"), fig4Key("STFM", "hs"),
         fig4Key("PAR-BS", "hs"), fig4Key("ATLAS", "hs")},
        /*factor=*/0.88));

    // -- Table 4: synthetic clone calibration bands -------------------------
    claims.push_back(Claim::band(
        "table4.worst_mpki_err",
        "Every clone's measured alone-MPKI lands within 20% of its paper "
        "target (relative error is noisy for near-zero-MPKI clones)",
        ResultSet::key("table4", "worst", "", "mpki_err_pct"), 0.0, 20.0));
    claims.push_back(Claim::band(
        "table4.worst_rbl_err",
        "Every clone's measured row-buffer locality is within 0.15 of "
        "its target",
        ResultSet::key("table4", "worst", "", "rbl_err"), 0.0, 0.15));
    claims.push_back(Claim::band(
        "table4.worst_blp_err",
        "Clone bank-level parallelism tracks its target within the "
        "documented window/DDR2 BLP ceiling (EXPERIMENTS.md deviation #2)",
        ResultSet::key("table4", "worst", "", "blp_err"), 0.0, 2.5));

    // -- Table 6: shuffling-algorithm fairness ------------------------------
    // Bounds encode this reproduction's documented deviation: random
    // shuffling, not insertion/dynamic, is the most fair at these run
    // lengths (EXPERIMENTS.md Table 6 note). The stable shape is
    // "round-robin is clearly worse than random" and "random has far the
    // lowest variance".
    const std::string kRrAvg =
        ResultSet::key("table6", "round-robin", "", "ms_avg");
    const std::string kRrVar =
        ResultSet::key("table6", "round-robin", "", "ms_var");
    const std::string kRandAvg =
        ResultSet::key("table6", "random", "", "ms_avg");
    const std::string kDynAvg =
        ResultSet::key("table6", "TCM (dynamic)", "", "ms_avg");
    claims.push_back(Claim::atMost(
        "table6.random_most_fair",
        "Random shuffling has the lowest average maximum slowdown of all "
        "shuffling variants (our substrate's deviation from Table 6)",
        kRandAvg,
        {kRrAvg, ResultSet::key("table6", "insertion", "", "ms_avg"),
         ResultSet::key("table6", "insertion(literal)", "", "ms_avg"),
         kDynAvg,
         ResultSet::key("table6", "TCM (dyn,literal)", "", "ms_avg")},
        /*epsilon=*/0.5));
    claims.push_back(Claim::ratioAtLeast(
        "table6.roundrobin_vs_random",
        "Round-robin shuffling is at least 15% less fair than random "
        "(paper Table 6 direction: 5.58 vs 5.13)",
        kRrAvg, {kRandAvg}, /*factor=*/1.15));
    claims.push_back(Claim::ratioAtMost(
        "table6.random_var_vs_roundrobin",
        "Random shuffling's MS variance is well below round-robin's "
        "(paper Table 6 direction: shuffling evens out slowdowns)",
        ResultSet::key("table6", "random", "", "ms_var"), {kRrVar},
        /*factor=*/0.60));
    claims.push_back(Claim::ratioAtMost(
        "table6.dynamic_bounded",
        "Dynamic (TCM) shuffling stays within 25% of round-robin's "
        "average MS (it does not beat random here; EXPERIMENTS.md note)",
        kDynAvg, {kRrAvg}, /*factor=*/1.25));
    claims.push_back(Claim::ratioAtMost(
        "table6.insertion_reading",
        "The prose-consistent insertion reading stays within 25% of the "
        "literal Algorithm 2 reading (nicestAtTop ablation)",
        ResultSet::key("table6", "insertion", "", "ms_avg"),
        {ResultSet::key("table6", "insertion(literal)", "", "ms_avg")},
        /*factor=*/1.25));

    // -- Scheduler zoo: championship ports vs the paper's frontier ----------
    // The zoo grid runs on the exact fig4 population, so these pin the
    // ported policies' fairness/throughput positions relative to TCM's
    // frontier point. Measured at both blessed scales (ci 4/cat and
    // default 8/cat): BLISS trails TCM's WS by ~8-9% while cutting MS by
    // ~35%; GHT trails WS by ~6% at 10-22% lower MS; Tournament tracks
    // TCM's WS within ~1% at lower MS; FRFCFS-CP matches FR-FCFS.
    claims.push_back(Claim::ratioAtMost(
        "zoo.bliss_fairer_than_tcm",
        "BLISS's maximum slowdown is at most 0.80x TCM's (blacklisting "
        "caps streak-driven interference harder than clustering)",
        zooKey("BLISS", "ms"), {zooKey("TCM", "ms")}, /*factor=*/0.80));
    claims.push_back(Claim::ratioAtLeast(
        "zoo.bliss_ws_near_tcm",
        "BLISS's weighted speedup stays within 15% of TCM's "
        "(BLISS paper: frontier-competitive with far simpler hardware)",
        zooKey("BLISS", "ws"), {zooKey("TCM", "ws")}, /*factor=*/0.85));
    claims.push_back(Claim::ratioAtLeast(
        "zoo.ght_ws_near_tcm",
        "GHT's weighted speedup stays within 12% of TCM's (read-history "
        "boosting recovers most of the clustering throughput)",
        zooKey("GHT", "ws"), {zooKey("TCM", "ws")}, /*factor=*/0.88));
    claims.push_back(Claim::ratioAtMost(
        "zoo.ght_fairer_than_atlas",
        "GHT's maximum slowdown is at most 0.85x ATLAS's (light-thread "
        "boosting plus heavy-rank rotation avoids ATLAS's starvation)",
        zooKey("GHT", "ms"), {zooKey("ATLAS", "ms")}, /*factor=*/0.85));
    claims.push_back(Claim::ratioAtLeast(
        "zoo.tournament_ws_near_best",
        "Tournament's weighted speedup stays within 7% of every "
        "candidate's standalone run (online selection does not forfeit "
        "the best candidate's throughput)",
        zooKey("Tournament", "ws"),
        {zooKey("TCM", "ws"), zooKey("ATLAS", "ws"),
         zooKey("BLISS", "ws")},
        /*factor=*/0.93));
    claims.push_back(Claim::ratioAtMost(
        "zoo.tournament_ms_vs_tcm",
        "Tournament's maximum slowdown does not exceed TCM's by more "
        "than 5% (quanta spent on fair candidates pay a fairness "
        "dividend, not a penalty)",
        zooKey("Tournament", "ms"), {zooKey("TCM", "ms")},
        /*factor=*/1.05));
    claims.push_back(Claim::ratioAtLeast(
        "zoo.cp_frfcfs_tracks_frfcfs",
        "Close-page FR-FCFS holds at least 95% of open-page FR-FCFS's "
        "weighted speedup (smart auto-precharge rarely hurts on this "
        "mix)",
        zooKey("FRFCFS-CP", "ws"), {zooKey("FR-FCFS", "ws")},
        /*factor=*/0.95));

    // -- Infrastructure: intra-run parallel stepping ------------------------
    // Not a paper claim but a reproduction-quality invariant: gang
    // stepping must actually buy wall-clock (its bit-identity to the
    // serial loop is enforced separately, by test_intra_parallel and
    // the parallel claims-gate CI run). The subject comes from the
    // paper::intraParallel measurement: a high-intensity TCM run on the
    // default 24-core/4-channel system, 4 worker lanes vs serial. The
    // upper bound only guards against a nonsensical timing artifact —
    // 4 lanes cannot legitimately exceed the lane count by much.
    claims.push_back(Claim::band(
        "perf.intra_parallel_speedup",
        "Intra-run parallel stepping at 4 workers is at least 1.3x "
        "faster than the serial loop on the 4-channel high-intensity "
        "TCM run",
        ResultSet::key("intra_parallel", "w4", "", "speedup"), 1.3, 8.0));

    // -- Infrastructure: interval sampling ----------------------------------
    // Subjects come from the paper::sampling probe (the fig4 grid run
    // full-length and interval-sampled; claims-gate leg
    // `claims --sampling-probe`, bench_sampling standalone). The
    // deterministic claims (error bands, preserved orderings, cycle
    // ratio) are the sampling contract; the wall-clock claim is the
    // point of the feature. Error bands were pinned from both blessed
    // scales (ci 4/cat and default 8/cat; see EXPERIMENTS.md "Interval
    // sampling") with headroom over the worst observed values.
    const std::string kSamplingSummary = "sampling/summary";
    claims.push_back(Claim::band(
        "sampling.ws_err",
        "Sampled weighted speedup lands within 8% of the full-run value "
        "for every fig4 scheduler (measured: 4.75% at the default scale, "
        "3.41% at ci)",
        kSamplingSummary + "/ws_err_max", 0.0, 0.08));
    claims.push_back(Claim::band(
        "sampling.ms_err",
        "Sampled maximum slowdown stays within 2.25x of the full-run "
        "value for every bounded-slowdown fig4 scheduler (measured "
        "worst: 103% at the default scale, 73% at ci). MS tracks one "
        "worst-case thread through quantum-scale scheduling phases and "
        "the sampled span covers about one quantum, so this band only "
        "guards against catastrophic divergence; the quantitative MS "
        "conclusions — including ATLAS, whose divergent starvation "
        "statistic is excluded here — gate through sampling.ordering",
        kSamplingSummary + "/ms_err_max_bounded", 0.0, 1.25));
    claims.push_back(Claim::band(
        "sampling.ordering",
        "Every fig4.* claim reaches the same verdict on the sampled "
        "document — sampling preserves the paper's scheduler orderings",
        kSamplingSummary + "/fig4_claims_failed", 0.0, 0.0));
    claims.push_back(Claim::band(
        "sampling.cycle_ratio",
        "The sampled run simulates at least 4x fewer cycles than the "
        "full run it estimates (default: 72k vs 350k = 4.9x)",
        kSamplingSummary + "/cycle_ratio", 4.0, 1000.0));
    claims.push_back(Claim::band(
        "sampling.speedup",
        "The sampled fig4 grid is at least 4x faster in wall-clock than "
        "the full grid (the upper bound only guards against timing "
        "artifacts)",
        kSamplingSummary + "/speedup", 4.0, 50.0));

    // Fine-margin MS comparisons between bounded-slowdown schedulers
    // (Claim::fullHorizonOnly): every table6 claim (the shuffling study
    // is entirely MS-distribution statistics over 30 runs) and the
    // tournament-vs-TCM 5% MS bound. Everything else — all WS/HS claims
    // and the coarse MS orderings (TCM vs ATLAS at 0.85x, BLISS vs TCM
    // at 0.8x) — must also hold on interval-sampled runs.
    for (Claim &c : claims)
        if (c.id.rfind("table6.", 0) == 0 ||
            c.id == "zoo.tournament_ms_vs_tcm")
            c.fullHorizonOnly = true;

    return claims;
}

} // namespace tcm::sim::claims
