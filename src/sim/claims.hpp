/**
 * @file
 * Declarative paper-claims registry: the reproduction's headline
 * findings (orderings on the throughput/fairness Pareto frontier,
 * calibration bands, shuffling statistics) encoded as machine-checkable
 * invariants over the structured bench results (sim/results.hpp).
 *
 * A claim references metrics by flat key "<bench>/<series>/<metric>"
 * (or "<bench>/<series>@<point>/<metric>" for multi-point rows) and is
 * one of:
 *   - atLeast / atMost   : subject >= ref - eps (resp. <=  + eps) for
 *                          EVERY reference key — ordering claims;
 *   - ratioAtLeast/AtMost: subject >= factor * ref (resp. <=) for
 *                          every reference — relative-gap claims;
 *   - band               : lo <= subject <= hi — calibration claims.
 * Missing keys never pass silently: they evaluate to Status::Missing,
 * which counts as failure.
 *
 * tools/claims runs the relevant experiments, evaluates paperClaims()
 * and additionally diffs the fresh documents against committed golden
 * BENCH_*.json baselines (diff()), so both a semantic regression (an
 * ordering flips) and silent numeric drift fail CI.
 */

#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/results.hpp"

namespace tcm::sim::claims {

/** Flat metric view over one or more results documents. */
class ResultSet
{
  public:
    /** Add every metric of @p doc under its flat keys. */
    void add(const results::ResultsDoc &doc);

    /** Set one key directly (tests, synthetic sets). */
    void set(const std::string &key, double value);

    const double *find(const std::string &key) const;

    /** "<bench>/<series>[@<point>]/<metric>". */
    static std::string key(const std::string &bench,
                           const std::string &series,
                           const std::string &point,
                           const std::string &metric);

    std::size_t size() const { return values_.size(); }

  private:
    std::map<std::string, double> values_;
};

enum class Kind { AtLeast, AtMost, RatioAtLeast, RatioAtMost, Band };

struct Claim
{
    std::string id;          // stable short name, e.g. "fig4.tcm_ws_vs_priors"
    std::string description; // one line for the verdict table
    Kind kind = Kind::Band;
    std::string subject;
    std::vector<std::string> references; // empty for Band
    double epsilon = 0.0;                // additive slack (AtLeast/AtMost)
    double factor = 1.0;                 // multiplier (Ratio*)
    double lo = 0.0, hi = 0.0;           // Band bounds (inclusive)

    /**
     * The claim's margin only resolves at the full measurement horizon,
     * so the interval-sampled gate (tools/claims --sampled) must skip
     * it. Set for fine-margin maximum-slowdown comparisons (<= 25%
     * between bounded-slowdown schedulers): MS tracks one worst-case
     * thread through quantum-scale scheduling phases, and a sampled
     * span covers about one quantum, so sampled MS carries ~2x phase
     * noise (see the sampling.ms_err claim) — far coarser than these
     * margins. Coarse MS claims and all WS/HS claims stay gated
     * sampled.
     */
    bool fullHorizonOnly = false;

    static Claim atLeast(std::string id, std::string description,
                         std::string subject,
                         std::vector<std::string> references,
                         double epsilon = 0.0);
    static Claim atMost(std::string id, std::string description,
                        std::string subject,
                        std::vector<std::string> references,
                        double epsilon = 0.0);
    static Claim ratioAtLeast(std::string id, std::string description,
                              std::string subject,
                              std::vector<std::string> references,
                              double factor);
    static Claim ratioAtMost(std::string id, std::string description,
                             std::string subject,
                             std::vector<std::string> references,
                             double factor);
    static Claim band(std::string id, std::string description,
                      std::string subject, double lo, double hi);
};

enum class Status { Pass, Fail, Missing };

struct Outcome
{
    std::string id;
    Status status = Status::Missing;
    /** Measured-vs-bound rendering, e.g. "8.89 >= 8.14 - 0.10 [PAR-BS]";
     *  for Missing, the absent key. */
    std::string detail;
    /** Worst slack across references: >= 0 passes, < 0 fails (NaN when
     *  keys were missing). Lets callers sort by how close a claim is. */
    double margin = 0.0;
};

Outcome evaluate(const Claim &claim, const ResultSet &set);
std::vector<Outcome> evaluateAll(const std::vector<Claim> &registry,
                                 const ResultSet &set);

/** Failed + missing outcomes (the count a gate should exit with). */
int failureCount(const std::vector<Outcome> &outcomes);

/** Human-readable verdict table (one row per claim) to @p out. */
void printVerdictTable(const std::vector<Claim> &registry,
                       const std::vector<Outcome> &outcomes,
                       std::FILE *out);

/**
 * Baseline diff: symmetric comparison of @p fresh against @p baseline.
 * Scale or bench-name mismatches, rows/metrics present on one side
 * only, and values differing by more than max(absTol, relTol*|base|)
 * all produce one human-readable line each; empty result == match.
 */
std::vector<std::string> diff(const results::ResultsDoc &fresh,
                              const results::ResultsDoc &baseline,
                              double relTol, double absTol);

/**
 * The registered paper claims over the fig4 / table4 / table6 documents
 * (see tools/claims and EXPERIMENTS.md "Gating on paper claims").
 * Bounds encode what this reproduction demonstrably shows at CI and
 * default scales — shape claims with tolerance bands, not the paper's
 * absolute numbers.
 */
std::vector<Claim> paperClaims();

} // namespace tcm::sim::claims
