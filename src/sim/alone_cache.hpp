/**
 * @file
 * Memoized alone-run IPC (the denominators of every paper metric),
 * with an optional disk-backed persistent store.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "sim/system_config.hpp"
#include "workload/profile.hpp"

namespace tcm::sim {

/**
 * Weighted speedup and maximum slowdown both divide by each thread's IPC
 * when running alone on the same system. That IPC depends only on the
 * thread's profile and the system configuration, so one cache instance
 * per configuration memoizes it across all workloads of an experiment —
 * the dominant cost saving that makes the 96-workload sweeps tractable.
 *
 * The alone run uses FR-FCFS (the scheduler is irrelevant without
 * contention) and a canonical trace seed; shared runs use per-instance
 * seeds, which changes addresses but not the stream's statistics.
 *
 * Concurrency: safe to call from many sweep workers at once. Entries
 * carry a per-key latch (std::once_flag), so two workers asking for the
 * same profile block on one alone simulation instead of both running it,
 * while different profiles simulate in parallel. prewarm() fills the
 * cache up front across a pool so the sweep proper starts read-only.
 *
 * Persistence (tools/sweepd): saveToFile()/loadFromFile() round-trip the
 * memo through a versioned text store so denominators are computed once
 * per *fleet*, not once per process. Every store is stamped with
 * fingerprint() — a hash of every behaviour-affecting SystemConfig field
 * plus the run horizon — and a load whose fingerprint does not match is
 * rejected wholesale (clean recompute beats silently wrong denominators).
 * Doubles are serialized in their shortest round-trip form
 * (common/numfmt), so a loaded entry is bit-equal to the computed one.
 */
class AloneIpcCache
{
  public:
    AloneIpcCache(const SystemConfig &config, Cycle warmup, Cycle measure);

    /** Alone IPC of @p profile, simulating on first use. */
    double aloneIpc(const workload::ThreadProfile &profile);

    /**
     * Simulate every distinct profile of @p workloads not yet cached,
     * fanned out across @p pool. Idempotent; after it returns, aloneIpc
     * for those profiles is a pure lookup.
     */
    void
    prewarm(const std::vector<std::vector<workload::ThreadProfile>> &workloads,
            ThreadPool &pool);

    /** Number of memoized entries (tests). */
    std::size_t size() const;

    // -- persistence ---------------------------------------------------------

    /**
     * Hash of everything an alone-run IPC depends on: the run horizon
     * (warmup/measure this cache was built with) and every
     * behaviour-affecting SystemConfig field. Deliberately excluded:
     * pure-observer knobs (telemetry, profiling, protocolCheck) and
     * bit-identity execution knobs (cycleSkip, intraRunParallel,
     * controller idleSkip), whose invariance is enforced by the
     * cycle-skip / intra-parallel / idle-skip test suites.
     */
    std::uint64_t fingerprint() const;
    static std::uint64_t fingerprint(const SystemConfig &config,
                                     Cycle warmup, Cycle measure);

    /** Outcome of loadFromFile (also the unit-test surface). */
    struct LoadResult
    {
        /** The store was read and every entry adopted. */
        bool ok = false;
        /** Entries adopted (0 unless ok). */
        std::size_t loaded = 0;
        /** Human-readable reason when !ok ("no such file", "fingerprint
         *  mismatch", "truncated store", ...); empty on success. */
        std::string message;
    };

    /**
     * Adopt the entries of the store at @p path. Safe against every
     * broken-store shape: a missing file, an unknown version, a
     * fingerprint mismatch, a truncated or corrupted body all return
     * !ok with a diagnostic message and leave the cache exactly as it
     * was — the caller falls back to recomputing. Entries already in
     * memory win over the store (loads happen before any simulation in
     * practice). Loaded entries count as hits when used.
     */
    LoadResult loadFromFile(const std::string &path);

    /**
     * Write every memoized entry to @p path (versioned header,
     * fingerprint stamp, entry count trailer against truncation).
     * Atomic: writes "<path>.tmp" then renames, so a killed writer
     * never leaves a half-store behind. Throws std::runtime_error on
     * I/O failure.
     */
    void saveToFile(const std::string &path) const;

    // -- counters ------------------------------------------------------------

    /** aloneIpc() calls served without simulating (memo or store hit). */
    std::uint64_t hits() const { return lookups_.load() - misses_.load(); }
    /** aloneIpc() calls that had to run an alone simulation. */
    std::uint64_t misses() const { return misses_.load(); }
    /** Total aloneIpc() calls. */
    std::uint64_t lookups() const { return lookups_.load(); }

  private:
    /** Single source of truth for what distinguishes two alone runs —
     *  see workload::ThreadProfile::aloneBehaviorKey(). */
    using Key = workload::ThreadProfile::AloneBehaviorKey;

    struct Entry
    {
        std::once_flag once;
        double ipc = 0.0;
    };

    /** Find-or-create the entry for @p key (brief map-lock only). */
    Entry &entryFor(const Key &key);

    /** The actual alone simulation (runs outside the map lock). */
    double computeAloneIpc(const workload::ThreadProfile &profile) const;

    SystemConfig config_;
    Cycle warmup_;
    Cycle measure_;
    mutable std::mutex mutex_;    //!< guards cache_ structure only
    std::map<Key, Entry> cache_;  //!< node-stable: Entry& survives inserts
    std::atomic<std::uint64_t> lookups_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace tcm::sim
