/**
 * @file
 * Memoized alone-run IPC (the denominators of every paper metric).
 */

#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "common/types.hpp"
#include "sim/system_config.hpp"
#include "workload/profile.hpp"

namespace tcm::sim {

/**
 * Weighted speedup and maximum slowdown both divide by each thread's IPC
 * when running alone on the same system. That IPC depends only on the
 * thread's profile and the system configuration, so one cache instance
 * per configuration memoizes it across all workloads of an experiment —
 * the dominant cost saving that makes the 96-workload sweeps tractable.
 *
 * The alone run uses FR-FCFS (the scheduler is irrelevant without
 * contention) and a canonical trace seed; shared runs use per-instance
 * seeds, which changes addresses but not the stream's statistics.
 */
class AloneIpcCache
{
  public:
    AloneIpcCache(const SystemConfig &config, Cycle warmup, Cycle measure);

    /** Alone IPC of @p profile, simulating on first use. */
    double aloneIpc(const workload::ThreadProfile &profile);

    /** Number of memoized entries (tests). */
    std::size_t size() const { return cache_.size(); }

  private:
    using Key = std::tuple<double, double, double, double>;

    SystemConfig config_;
    Cycle warmup_;
    Cycle measure_;
    std::map<Key, double> cache_;
};

} // namespace tcm::sim
