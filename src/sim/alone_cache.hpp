/**
 * @file
 * Memoized alone-run IPC (the denominators of every paper metric).
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "sim/system_config.hpp"
#include "workload/profile.hpp"

namespace tcm::sim {

/**
 * Weighted speedup and maximum slowdown both divide by each thread's IPC
 * when running alone on the same system. That IPC depends only on the
 * thread's profile and the system configuration, so one cache instance
 * per configuration memoizes it across all workloads of an experiment —
 * the dominant cost saving that makes the 96-workload sweeps tractable.
 *
 * The alone run uses FR-FCFS (the scheduler is irrelevant without
 * contention) and a canonical trace seed; shared runs use per-instance
 * seeds, which changes addresses but not the stream's statistics.
 *
 * Concurrency: safe to call from many sweep workers at once. Entries
 * carry a per-key latch (std::once_flag), so two workers asking for the
 * same profile block on one alone simulation instead of both running it,
 * while different profiles simulate in parallel. prewarm() fills the
 * cache up front across a pool so the sweep proper starts read-only.
 */
class AloneIpcCache
{
  public:
    AloneIpcCache(const SystemConfig &config, Cycle warmup, Cycle measure);

    /** Alone IPC of @p profile, simulating on first use. */
    double aloneIpc(const workload::ThreadProfile &profile);

    /**
     * Simulate every distinct profile of @p workloads not yet cached,
     * fanned out across @p pool. Idempotent; after it returns, aloneIpc
     * for those profiles is a pure lookup.
     */
    void
    prewarm(const std::vector<std::vector<workload::ThreadProfile>> &workloads,
            ThreadPool &pool);

    /** Number of memoized entries (tests). */
    std::size_t size() const;

  private:
    /** Single source of truth for what distinguishes two alone runs —
     *  see workload::ThreadProfile::aloneBehaviorKey(). */
    using Key = workload::ThreadProfile::AloneBehaviorKey;

    struct Entry
    {
        std::once_flag once;
        double ipc = 0.0;
    };

    /** Find-or-create the entry for @p key (brief map-lock only). */
    Entry &entryFor(const Key &key);

    /** The actual alone simulation (runs outside the map lock). */
    double computeAloneIpc(const workload::ThreadProfile &profile) const;

    SystemConfig config_;
    Cycle warmup_;
    Cycle measure_;
    mutable std::mutex mutex_;    //!< guards cache_ structure only
    std::map<Key, Entry> cache_;  //!< node-stable: Entry& survives inserts
};

} // namespace tcm::sim
