/**
 * @file
 * Whole-system simulator: cores + controllers + scheduler.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/core.hpp"
#include "dram/energy.hpp"
#include "dram/protocol_checker.hpp"
#include "mem/controller.hpp"
#include "prof/profiler.hpp"
#include "stats/counters.hpp"
#include "sched/factory.hpp"
#include "sched/tcm/monitor.hpp"
#include "sim/system_config.hpp"
#include "telemetry/sampler.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic_trace.hpp"

namespace tcm::sim {

/**
 * Forwards controller observation hooks to both the real scheduling
 * policy and a set of behaviour-probe monitors, while delegating every
 * prioritization knob to the policy. Lets experiments measure a thread's
 * MPKI/RBL/BLP under any scheduler without touching the controller.
 */
class ProbePolicy : public mem::SchedulerPolicy
{
  public:
    explicit ProbePolicy(mem::SchedulerPolicy &inner) : inner_(&inner) {}

    const char *name() const override { return inner_->name(); }

    void
    configure(int numThreads, int numChannels, int banksPerChannel) override
    {
        mem::SchedulerPolicy::configure(numThreads, numChannels,
                                        banksPerChannel);
        inner_->configure(numThreads, numChannels, banksPerChannel);
        // A single global-bank monitor measures exact system-wide BLP.
        monitor_.configure(numThreads, numChannels * banksPerChannel,
                           banksPerChannel);
    }

    void
    attachQueue(ChannelId ch, mem::QueueAccess *queue) override
    {
        inner_->attachQueue(ch, queue);
    }

    void
    setCoreCounters(const std::vector<mem::CoreCounters> *counters) override
    {
        inner_->setCoreCounters(counters);
    }

    void
    setThreadWeights(const std::vector<int> &weights) override
    {
        inner_->setThreadWeights(weights);
    }

    void
    onArrival(const mem::Request &req, Cycle now) override
    {
        monitor_.onArrival(req, now);
        inner_->onArrival(req, now);
    }

    void
    onDepart(const mem::Request &req, Cycle now) override
    {
        monitor_.onDepart(req, now);
        inner_->onDepart(req, now);
    }

    void
    onCommand(const mem::Request &req, dram::CommandKind kind, Cycle now,
              Cycle occupancy) override
    {
        monitor_.addService(req.thread, occupancy);
        inner_->onCommand(req, kind, now, occupancy);
    }

    void tick(Cycle now) override { inner_->tick(now); }

    // Event-horizon plumbing: the probe itself is purely observational
    // (hook-driven), so the inner policy's horizon, lazy catch-up, and
    // rank epoch pass through untouched.
    Cycle nextEventAt(Cycle now) const override
    {
        return inner_->nextEventAt(now);
    }
    Cycle decoupleHorizon(Cycle now) const override
    {
        return inner_->decoupleHorizon(now);
    }
    void syncTo(Cycle now) override { inner_->syncTo(now); }
    std::uint64_t rankEpoch() const override { return inner_->rankEpoch(); }

    int
    rankOf(ChannelId ch, ThreadId t) const override
    {
        return inner_->rankOf(ch, t);
    }

    Cycle agingThreshold() const override { return inner_->agingThreshold(); }
    bool rowHitAboveRank() const override { return inner_->rowHitAboveRank(); }
    bool useRowHit() const override { return inner_->useRowHit(); }
    bool prefersClosedPage() const override
    {
        return inner_->prefersClosedPage();
    }

    /** Reset probe accumulators (start of the measurement window). */
    void resetProbe(Cycle now) { monitor_.reset(now); }

    sched::ThreadBankMonitor &monitor() { return monitor_; }

  private:
    mem::SchedulerPolicy *inner_;
    sched::ThreadBankMonitor monitor_;
};

/**
 * Builds and runs one multiprogrammed simulation: one Core per thread
 * profile, one MemoryController per channel, one scheduling policy.
 */
class Simulator
{
  public:
    /** Measured memory behaviour of one thread (probe output). */
    struct BehaviorStats
    {
        double mpki = 0.0;
        double rbl = 0.0; //!< meaningless unless probed
        double blp = 0.0; //!< meaningless unless probed
        double ipc = 0.0;
        bool probed = false; //!< rbl/blp were actually measured
    };

    /**
     * Build with synthetic clones of @p profiles.
     *
     * @param enableProbe attach behaviour-probe monitors (small runtime
     *        cost; needed by behavior() and the Table 4 bench)
     */
    Simulator(const SystemConfig &config,
              const std::vector<workload::ThreadProfile> &profiles,
              const sched::SchedulerSpec &spec, std::uint64_t seed,
              bool enableProbe = false);

    /**
     * Build with caller-supplied instruction streams (e.g. FileTrace
     * replays), one per core. @p weights is per-thread OS weights
     * (empty = all 1).
     */
    Simulator(const SystemConfig &config,
              std::vector<std::unique_ptr<core::TraceSource>> traces,
              const sched::SchedulerSpec &spec, std::uint64_t seed,
              bool enableProbe = false, std::vector<int> weights = {});

    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Run @p warmup unmeasured cycles, then @p measure measured ones. */
    void run(Cycle warmup, Cycle measure);

    /** Advance the simulation by exactly @p cycles (incremental use). */
    void step(Cycle cycles);

    /** Mark the beginning of the measurement window. */
    void beginMeasurement();

    int numThreads() const { return static_cast<int>(cores_.size()); }
    Cycle now() const { return now_; }

    /** IPC of @p t over the measurement window. */
    double measuredIpc(ThreadId t) const;

    /** Measured MPKI/RBL/BLP/IPC of @p t (requires enableProbe). */
    BehaviorStats behavior(ThreadId t) const;

    mem::SchedulerPolicy &scheduler() { return *policy_; }
    const mem::SchedulerPolicy &scheduler() const { return *policy_; }
    const mem::ControllerStats &controllerStats(ChannelId ch) const;

    /** Command counts of channel @p ch for dram::computeEnergy. */
    dram::CommandCounts commandCounts(ChannelId ch) const;

    /** Read-latency distributions of channel @p ch (measurement window). */
    const mem::LatencyTracker &latency(ChannelId ch) const;

    /** Cycles simulated since beginMeasurement(). */
    Cycle measuredCycles() const { return now_ - measureStart_; }

    const SystemConfig &config() const { return config_; }

    /** True when the behaviour probe was enabled at construction. */
    bool hasProbe() const { return probe_ != nullptr; }

    /**
     * Diagnostic counters of the intra-run parallel driver (spans
     * stepped, controller ticks inside spans, gang-cycle ticks),
     * accumulated from per-worker shards merged at each barrier (see
     * stats::NamedCounters::addFrom). All zero when
     * SystemConfig::intraRunParallel is 1.
     */
    const stats::NamedCounters &intraParallelStats() const
    {
        return parallelStats_;
    }
    const std::vector<mem::CoreCounters> &counters() const { return counters_; }

    /**
     * Attach a passive command observer to every controller (trace
     * recording, extra auditing). Call before stepping the simulation;
     * the observer must outlive the Simulator.
     */
    void attachCommandObserver(dram::CommandObserver *observer);

    /**
     * Attach an in-run telemetry sink. The sink's TelemetryConfig
     * selects what flows into it: scheduler-decision events, per-read
     * lifecycle breakdowns, and the interval sampler (armed from the
     * current cycle). Purely observational — simulation results are
     * bit-identical with or without a sink. The sink must outlive the
     * Simulator; call before stepping.
     */
    void attachTelemetry(telemetry::TelemetrySink *sink);

    /** True when attachTelemetry was called. */
    bool hasTelemetry() const { return telemetry_ != nullptr; }

    /**
     * Attach a self-profiler (nullptr detaches): wall-clock phase
     * timers, cycle-skip horizon attribution, per-core regime occupancy
     * and gang-lane imbalance accumulate into it. The profiler observes
     * the *simulator*, never the simulated system — nothing it measures
     * feeds back into simulated state, so results are bit-identical
     * attached or detached (tests/test_prof). The profiler must outlive
     * the Simulator; call before stepping. When a telemetry sink with
     * interval sampling is also attached, each sample point additionally
     * pushes a cumulative "simulator" sample rendered as its own lane in
     * the Chrome trace output.
     */
    void attachProfiler(prof::Profiler *profiler);

    /** True when attachProfiler was called. */
    bool hasProfiler() const { return prof_ != nullptr; }

    /**
     * The protocol auditor, present when SystemConfig::protocolCheck was
     * set. Call its finalize(now()) once the run is over, then read the
     * verdict.
     */
    dram::ProtocolChecker *protocolChecker() { return checker_.get(); }
    const dram::ProtocolChecker *
    protocolChecker() const
    {
        return checker_.get();
    }

  private:
    /** Shared construction tail once traces exist. */
    void init(std::vector<std::unique_ptr<core::TraceSource>> traces,
              const sched::SchedulerSpec &spec, std::uint64_t seed,
              bool enableProbe, const std::vector<int> &weights);

    /** @{ Cumulative gauges snapshotted at telemetry sample points. */
    std::vector<telemetry::ThreadGauges> threadGauges();
    std::vector<telemetry::ChannelGauges> channelGauges() const;
    /** @} */

    /** Emit one interval sample and re-arm the sampling clock. */
    void sampleTelemetry();

    /**
     * One fully simulated cycle, in canonical component order.
     * @p regimeCap > 0 selects cycle-skip mode: cores provably inside a
     * silent regime advance via the O(1) closed form instead of a full
     * tick (bit-identical by the regime contract, see Core::silentSpan),
     * with fresh regimes probed up to @p regimeCap cycles ahead and
     * cached in coreSpan_. 0 = oracle mode, plain ticks only.
     */
    void executeCycle(Cycle now, mem::SchedulerPolicy *active,
                      Cycle regimeCap);

    /**
     * Earliest cycle >= @p now at which any component other than a core
     * could act (conservative minimum over scheduler, telemetry clock,
     * and every controller), clamped to [@p now, @p end]. @p src is set
     * to which subsystem's horizon won (ties keep the earlier-listed
     * source; a low clamp keeps the cutting source) — profiler
     * attribution only, never consulted by simulation logic.
     */
    Cycle horizonAt(Cycle now, Cycle end, const mem::SchedulerPolicy *active,
                    prof::HorizonSource &src) const;

    // -- intra-run parallel driver (config_.intraRunParallel > 1) -----------

    /**
     * step() body when the worker gang is active: canonical cycles run
     * through gangExecuteCycle (controllers tick concurrently with side
     * effects deferred, then replayed in serial order); with cycleSkip
     * on, the stretches between scheduler synchronization points and
     * core<->memory interactions run as multi-cycle decoupled spans in
     * which each worker self-paces its controller across dead cycles.
     * Bit-identical to the serial drivers at any worker count.
     */
    void stepParallel(Cycle cycles, mem::SchedulerPolicy *active);

    /**
     * One fully simulated cycle with the controller fleet stepped on
     * the gang: policy tick, deferred controller ticks, replay, drain,
     * cores (regime form as executeCycle), telemetry — canonical order.
     */
    void gangExecuteCycle(Cycle now, mem::SchedulerPolicy *active,
                          Cycle regimeCap);

    /**
     * Replay every deferred log in canonical serial order — merged
     * across channels by (cycle, channel): scheduler hooks to @p active
     * (with lazily accrued policy statistics synced to each hook cycle
     * first), command events to the channel observers, lifecycle
     * records to the telemetry sink — then clear the logs.
     */
    void replayDeferred(mem::SchedulerPolicy *active);

    /** Fold the per-worker counter shards into parallelStats_. */
    void mergeShards();

    SystemConfig config_;
    std::unique_ptr<mem::SchedulerPolicy> policy_;
    std::unique_ptr<ProbePolicy> probe_;
    std::unique_ptr<dram::ProtocolChecker> checker_;
    std::vector<std::unique_ptr<core::TraceSource>> traces_;
    std::vector<std::unique_ptr<mem::MemoryController>> controllers_;
    std::vector<std::unique_ptr<core::Core>> cores_;
    std::vector<mem::CoreCounters> counters_;

    telemetry::TelemetrySink *telemetry_ = nullptr;
    std::unique_ptr<telemetry::IntervalSampler> sampler_;
    Cycle telemetrySampleAt_ = kCycleNever;
    prof::Profiler *prof_ = nullptr;

    Cycle now_ = 0;
    Cycle measureStart_ = 0;
    /** Per-core remaining silent-regime span (cycle-skip scratch). */
    std::vector<Cycle> coreSpan_;
    std::vector<std::uint64_t> baseInstructions_;
    std::vector<std::uint64_t> baseMisses_;

    // Intra-run parallel state (null/empty when intraRunParallel == 1).
    std::unique_ptr<SpinGang> gang_;
    std::function<void(std::size_t)> gangTask_; //!< built once, no per-barrier alloc
    Cycle spanFrom_ = 0;           //!< gangTask_ input: span start (or cycle)
    Cycle spanTo_ = 0;             //!< gangTask_ input: span end (exclusive)
    bool spanCycleMode_ = false;   //!< gangTask_ input: single-cycle gang
    Cycle completionLag_ = 0;      //!< min issue->readyAt read latency
    stats::NamedCounters parallelStats_{std::vector<std::string>{}};
    std::vector<stats::NamedCounters> workerShards_; //!< one per controller
    std::vector<std::size_t> replayIdx_;             //!< replay merge scratch
};

} // namespace tcm::sim
