/**
 * @file
 * Sweep daemon: simulation-as-a-service over the experiment layer.
 *
 * The paper's sweeps are embarrassingly parallel but historically
 * process-shaped: every `tools/sweep` invocation recomputed its alone-IPC
 * denominators, held all results in memory, and emitted one monolithic
 * CSV at the end. The daemon inverts that shape:
 *
 *  - A *manifest* is a plain-text list of (scheduler, protocol,
 *    intensity, mix-index, seed) jobs plus the shared system/scale knobs.
 *  - Jobs are dispatched in batches across a tcm::ThreadPool; as each
 *    batch completes, its jobs are appended to the output stream **in
 *    manifest order**, one compact ResultsDoc JSONL record per job
 *    (results::ResultsDoc::toJsonLine), so a consumer can tail the file.
 *  - Alone-IPC denominators live in persistent per-configuration stores
 *    (AloneIpcCache::saveToFile, keyed by fingerprint), loaded at
 *    startup and appended after every batch — computed once per fleet,
 *    not once per process.
 *  - After every batch the daemon writes an atomic checkpoint binding
 *    (manifest hash, jobs emitted, output byte offset). A killed daemon
 *    restarted on the same state truncates the stream to the last
 *    checkpoint and re-runs from there; because every record is
 *    deterministic, the final file is byte-identical to an uninterrupted
 *    run (tests/test_sweepd.cpp asserts this literally).
 *
 * Nothing wall-clock-dependent ever enters the stream: throughput
 * (jobs/sec) and cache hit rate go to a separate summary document's
 * run-provenance block, which results diffs never compare.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/factory.hpp"
#include "sim/experiment.hpp"

namespace tcm::sim::sweepd {

/** One unit of work: a single (workload, scheduler) simulation. */
struct JobSpec
{
    std::string scheduler; //!< sched::specByName registry name
    std::string protocol;  //!< DRAM protocol preset ("ddr2-800", ...)
    double intensity = 0.5; //!< memory-intensive thread fraction [0,1]
    int mixIndex = 0;       //!< which random mix of the intensity family
    std::uint64_t seed = 1; //!< per-run trace seed
};

/**
 * A parsed job manifest. Text format ("#" comments and blank lines
 * ignored, fields space-separated):
 *
 *   tcmsim-manifest v1
 *   cores 8                  # optional, default 24
 *   channels 2               # optional, default 4
 *   warmup 20000             # optional, default 50000
 *   cycles 100000            # optional, default 300000
 *   sample 5000:4:10000      # optional W:K[:WARMUP]; default off
 *   workload-seed 7          # optional, default 1
 *   job tcm ddr2-800 0.5 0 1
 *   job frfcfs ddr3-1333 1 3 42
 *
 * Workload identity is positional, not manifest-positional: job
 * (intensity, mixIndex) always denotes randomMix(cores, intensity,
 * workloadSeed + intensity*1000 + 1000003*(mixIndex+1)) — the exact
 * workloadSet seeding of the batch drivers — so two manifests that name
 * the same job produce the same record regardless of what else they
 * contain.
 */
struct Manifest
{
    int cores = 24;
    int channels = 4;
    Cycle warmup = 50'000;
    Cycle measure = 300'000;
    SamplingConfig sampling; //!< off unless a `sample` line enables it
    std::uint64_t workloadSeed = 1;
    std::vector<JobSpec> jobs;

    /** FNV-1a of the manifest text this was parsed from (binds
     *  checkpoints to their manifest). */
    std::uint64_t textHash = 0;

    /** ExperimentScale equivalent of the manifest's knobs. */
    ExperimentScale scale() const;

    /**
     * Parse @p text. Scheduler and protocol names are validated against
     * their registries at parse time, so a bad manifest is rejected
     * whole instead of failing mid-stream. Returns false and sets
     * @p error (line-numbered) on any problem.
     */
    static bool parse(const std::string &text, Manifest *out,
                      std::string *error);
};

/** Outcome of one Server::runManifest call. */
struct RunOutcome
{
    bool ok = false;       //!< manifest valid and all I/O succeeded
    bool finished = false; //!< every job emitted (false when stopped)
    bool resumed = false;  //!< picked up from a prior checkpoint
    std::uint64_t emitted = 0;            //!< stream total, all sessions
    std::uint64_t emittedThisSession = 0; //!< jobs run by this call
    std::uint64_t cacheHits = 0;   //!< alone-IPC lookups served memoized
    std::uint64_t cacheMisses = 0; //!< alone-IPC lookups that simulated
    double wallSeconds = 0.0;
    double jobsPerSec = 0.0; //!< emittedThisSession / wallSeconds
    std::string error;       //!< non-empty iff !ok
};

/**
 * The daemon proper. One instance owns a state directory holding the
 * persistent alone-IPC stores ("alone-<fingerprint>.cache"), per-run
 * checkpoints ("<output>.ckpt") and summary documents
 * ("<output>.summary.json"). runManifest() is the one-shot core;
 * drainSpool() layers the long-running service shape on top (submit
 * work by dropping manifests into <state>/spool).
 */
class Server
{
  public:
    struct Options
    {
        std::string stateDir; //!< required; created if missing
        int jobs = 0;         //!< worker threads; <=0 = defaultJobs()
        /** Jobs per dispatch batch (also the checkpoint granularity);
         *  <= 0 picks 4x the worker count. */
        int batch = 0;
        /**
         * Stop cleanly — checkpointed, caches saved — once this many
         * jobs have been emitted in this session (0 = no limit). The
         * test hook behind the kill/resume contract: a --stop-after
         * run is indistinguishable from a daemon killed between
         * batches.
         */
        std::uint64_t stopAfter = 0;
        /** Progress/diagnostic sink; null = silent. */
        std::function<void(const std::string &)> log;
    };

    explicit Server(Options options);

    /**
     * Run the manifest at @p manifestPath, streaming one JSONL record
     * per job to @p outPath (resuming from the checkpoint when one
     * matches), then write the throughput summary next to it. Never
     * throws; failures come back in RunOutcome::error.
     */
    RunOutcome runManifest(const std::string &manifestPath,
                           const std::string &outPath);

    /**
     * Service mode: process every "*.manifest" in <state>/spool in name
     * order, writing <state>/results/<stem>.jsonl and moving finished
     * manifests to <state>/done. Returns the number of manifests fully
     * finished this call (a stopAfter interrupt leaves the manifest
     * spooled for the next drain — that is the resume path).
     */
    int drainSpool();

    const Options &options() const { return options_; }

  private:
    Options options_;
};

} // namespace tcm::sim::sweepd
