/**
 * @file
 * Interval sampler: turns cumulative simulator gauges into per-interval
 * time-series samples.
 *
 * The simulator supplies raw cumulative counters (and a few
 * instantaneous gauges) at each sample point; the sampler owns the
 * previous-sample state, differentiates, and pushes ThreadSample /
 * ChannelSample rows into a TelemetrySink. Keeping the delta state here
 * leaves the simulator's contribution to a sample at "copy counters
 * into a struct" — no telemetry math on the sim side.
 */

#pragma once

#include <vector>

#include "common/types.hpp"
#include "telemetry/sink.hpp"

namespace tcm::telemetry {

/** Cumulative / instantaneous per-thread gauges at one sample point. */
struct ThreadGauges
{
    std::uint64_t instructions = 0; //!< cumulative retired instructions
    std::uint64_t readMisses = 0;   //!< cumulative L2 read misses

    /** Behaviour-probe gauges; false leaves rbl/blp/outstanding null. */
    bool hasBehavior = false;
    std::uint64_t shadowHits = 0;   //!< cumulative shadow row-buffer hits
    std::uint64_t accesses = 0;     //!< cumulative monitored reads
    int banksWithLoad = 0;          //!< instantaneous BLP
    int outstanding = 0;            //!< instantaneous outstanding reads
};

/** Cumulative / instantaneous per-channel gauges at one sample point. */
struct ChannelGauges
{
    std::uint64_t commands = 0;  //!< cumulative command-bus slots used
    std::uint64_t columns = 0;   //!< cumulative RD+WR column commands
    std::uint64_t rowHits = 0;   //!< cumulative row-buffer hits
    std::uint32_t readQueue = 0; //!< instantaneous read-queue load
    std::uint32_t writeQueue = 0; //!< instantaneous write-queue load
};

/**
 * Differentiates gauge vectors between consecutive sample points. One
 * instance per simulator; rebase() resets the baseline whenever the
 * underlying counters do (attach time, measurement start).
 */
class IntervalSampler
{
  public:
    /**
     * @param tCK    command-bus occupancy of one command, in CPU cycles
     * @param tBurst data-bus occupancy of one column access, in cycles
     */
    IntervalSampler(int numThreads, int numChannels, Cycle tCK,
                    Cycle tBurst);

    /**
     * Reset the delta baseline to the given cumulative gauges without
     * emitting samples. Call when counters were externally reset or the
     * sampling clock is re-armed.
     */
    void rebase(Cycle now, const std::vector<ThreadGauges> &threads,
                const std::vector<ChannelGauges> &channels);

    /**
     * Emit one sample row per thread and per channel for the interval
     * [lastSample, now), then adopt @p threads / @p channels as the new
     * baseline. A zero-length interval is ignored.
     */
    void sample(Cycle now, const std::vector<ThreadGauges> &threads,
                const std::vector<ChannelGauges> &channels,
                TelemetrySink &sink);

  private:
    Cycle tCK_;
    Cycle tBurst_;
    Cycle lastSampleAt_ = 0;
    std::vector<ThreadGauges> prevThreads_;
    std::vector<ChannelGauges> prevChannels_;
};

} // namespace tcm::telemetry
