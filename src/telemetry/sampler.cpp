#include "telemetry/sampler.hpp"

#include <cassert>

namespace tcm::telemetry {

IntervalSampler::IntervalSampler(int numThreads, int numChannels,
                                 Cycle tCK, Cycle tBurst)
    : tCK_(tCK), tBurst_(tBurst)
{
    prevThreads_.resize(numThreads);
    prevChannels_.resize(numChannels);
}

void
IntervalSampler::rebase(Cycle now, const std::vector<ThreadGauges> &threads,
                        const std::vector<ChannelGauges> &channels)
{
    assert(threads.size() == prevThreads_.size());
    assert(channels.size() == prevChannels_.size());
    lastSampleAt_ = now;
    prevThreads_ = threads;
    prevChannels_ = channels;
}

void
IntervalSampler::sample(Cycle now, const std::vector<ThreadGauges> &threads,
                        const std::vector<ChannelGauges> &channels,
                        TelemetrySink &sink)
{
    assert(threads.size() == prevThreads_.size());
    assert(channels.size() == prevChannels_.size());
    if (now <= lastSampleAt_)
        return;
    const double dt = static_cast<double>(now - lastSampleAt_);

    for (std::size_t t = 0; t < threads.size(); ++t) {
        const ThreadGauges &cur = threads[t];
        const ThreadGauges &prev = prevThreads_[t];
        ThreadSample s;
        s.cycle = now;
        s.thread = static_cast<ThreadId>(t);

        const std::uint64_t insts = cur.instructions - prev.instructions;
        const std::uint64_t misses = cur.readMisses - prev.readMisses;
        s.ipc = static_cast<double>(insts) / dt;
        s.mpki = insts > 0 ? 1000.0 * static_cast<double>(misses) /
                                 static_cast<double>(insts)
                           : 0.0;

        if (cur.hasBehavior) {
            const std::uint64_t accesses = cur.accesses - prev.accesses;
            const std::uint64_t hits = cur.shadowHits - prev.shadowHits;
            // RBL over an idle interval is unknown, not zero.
            s.rbl = accesses > 0 ? static_cast<double>(hits) /
                                       static_cast<double>(accesses)
                                 : kNoGauge;
            s.blp = static_cast<double>(cur.banksWithLoad);
            s.outstanding = static_cast<double>(cur.outstanding);
        }
        sink.addThreadSample(s);
    }

    for (std::size_t ch = 0; ch < channels.size(); ++ch) {
        const ChannelGauges &cur = channels[ch];
        const ChannelGauges &prev = prevChannels_[ch];
        ChannelSample s;
        s.cycle = now;
        s.channel = static_cast<ChannelId>(ch);
        s.readQueue = cur.readQueue;
        s.writeQueue = cur.writeQueue;

        const std::uint64_t commands = cur.commands - prev.commands;
        const std::uint64_t columns = cur.columns - prev.columns;
        const std::uint64_t rowHits = cur.rowHits - prev.rowHits;
        s.rowHitRate = columns > 0 ? static_cast<double>(rowHits) /
                                         static_cast<double>(columns)
                                   : kNoGauge;
        s.cmdBusUtil =
            static_cast<double>(commands) * static_cast<double>(tCK_) / dt;
        s.dataBusUtil = static_cast<double>(columns) *
                        static_cast<double>(tBurst_) / dt;
        sink.addChannelSample(s);
    }

    lastSampleAt_ = now;
    prevThreads_ = threads;
    prevChannels_ = channels;
}

} // namespace tcm::telemetry
