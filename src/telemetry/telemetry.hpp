/**
 * @file
 * In-run telemetry value types: configuration knobs, interval samples,
 * scheduler-decision events, and the bounded ring buffer that stores
 * them.
 *
 * The telemetry layer is strictly passive: it records what the
 * simulation did, never influences what it does. Everything hangs off
 * the detachable-observer pattern — with no sink attached the simulator
 * performs zero telemetry calls on the hot path (one never-taken
 * compare per cycle), and results are bit-identical either way.
 */

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace tcm::telemetry {

/**
 * Telemetry knobs, carried on sim::SystemConfig. `enabled` is the
 * master switch read by the experiment drivers (sim::runWorkload); the
 * lower-level Simulator::attachTelemetry API works regardless.
 */
struct TelemetryConfig
{
    /** Experiment drivers attach a sink to every run when set. */
    bool enabled = false;

    /** Cycles between interval samples; 0 disables the sampler. */
    Cycle sampleInterval = 10'000;

    /** Emit scheduler-decision events (quanta, batches, rank updates). */
    bool traceDecisions = true;

    /** Record per-read queueing-vs-service lifecycle latencies. */
    bool traceLifecycle = true;

    /**
     * Enable the behaviour probe on telemetry runs so thread samples
     * carry instantaneous RBL/BLP/outstanding-miss gauges. Without it
     * those gauges are recorded as absent (null in JSONL), never 0.
     */
    bool probeBehavior = true;

    /** Ring capacity for thread and channel sample series (each). */
    std::size_t maxSamples = 1 << 16;

    /** Ring capacity for decision events. */
    std::size_t maxEvents = 1 << 16;

    /**
     * When non-empty, experiment drivers serialize each run's sink to
     * `<dir>/<filePrefix><scheduler>_seed<seed>.jsonl` and
     * `....trace.json`. The naming is deterministic, so the parallel
     * runner (one sink per worker task) writes a stable file set
     * regardless of thread count.
     */
    std::string dir;
    std::string filePrefix;
};

/** Sentinel for "gauge not measured" (probe off / no traffic). */
inline constexpr double kNoGauge =
    std::numeric_limits<double>::quiet_NaN();

/** True when @p v carries a measured value (not kNoGauge). */
inline bool
hasGauge(double v)
{
    return !std::isnan(v);
}

/** One per-thread interval sample (gauges over the last interval). */
struct ThreadSample
{
    Cycle cycle = 0;
    ThreadId thread = 0;
    double ipc = 0.0;         //!< interval instructions / interval cycles
    double mpki = 0.0;        //!< interval misses per 1000 instructions
    double rbl = kNoGauge;    //!< interval shadow row-buffer hit rate
    double blp = kNoGauge;    //!< instantaneous banks-with-load
    double outstanding = kNoGauge; //!< instantaneous outstanding reads
};

/** One per-channel interval sample. */
struct ChannelSample
{
    Cycle cycle = 0;
    ChannelId channel = 0;
    std::uint32_t readQueue = 0;  //!< instantaneous read-queue load
    std::uint32_t writeQueue = 0; //!< instantaneous write-queue load
    double rowHitRate = kNoGauge; //!< interval row-hit rate (null if idle)
    double cmdBusUtil = 0.0;      //!< interval command-bus utilization
    double dataBusUtil = 0.0;     //!< interval data-bus utilization
};

/**
 * One self-observation sample from the simulator's own profiler
 * (tcm::prof): cumulative host wall-clock milliseconds and cycle-skip
 * progress at a simulated cycle. Emitted only when a Profiler is
 * attached alongside telemetry, and serialized exclusively into the
 * Chrome trace's "simulator" lane — the JSONL byte stream is part of
 * the bit-identity contract and never carries these.
 */
struct SimulatorSample
{
    Cycle cycle = 0;
    double wallMs = 0.0;            //!< host wall clock since attach
    std::uint64_t skips = 0;        //!< cumulative horizon jumps taken
    std::uint64_t skippedCycles = 0; //!< cumulative cycles jumped over
};

/**
 * One scheduler-decision event. `args` carries (key, value) pairs whose
 * values are already JSON-encoded text (see the json* helpers below),
 * so serialization is a string join and tests can introspect values
 * without a JSON library.
 */
struct DecisionEvent
{
    Cycle cycle = 0;
    std::string name;     //!< e.g. "tcm.quantum", "parbs.batch"
    std::string category; //!< Chrome trace category, e.g. "sched"
    std::vector<std::pair<std::string, std::string>> args;

    /** Raw JSON text of @p key, or empty when absent. */
    const std::string &arg(const std::string &key) const;
};

/** @{ JSON value encoding for DecisionEvent args and the writers. */
std::string jsonNumber(double v);
std::string jsonNumber(std::uint64_t v);
std::string jsonNumber(std::int64_t v);
std::string jsonString(const std::string &s);
std::string jsonArray(const std::vector<int> &v);
std::string jsonArray(const std::vector<double> &v);
/** @} */

/**
 * Bounded FIFO that drops the *oldest* element on overflow and counts
 * what it dropped — a telemetry series must never grow unbounded with
 * run length, and must never pretend it kept everything.
 */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {}

    void
    push(const T &value)
    {
        if (capacity_ == 0) {
            ++dropped_;
            return;
        }
        if (data_.size() < capacity_) {
            data_.push_back(value);
            return;
        }
        data_[head_] = value;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }

    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Elements evicted (or refused) because of the capacity bound. */
    std::uint64_t dropped() const { return dropped_; }

    /** Element @p i in insertion order (0 = oldest retained). */
    const T &
    at(std::size_t i) const
    {
        return data_[(head_ + i) % data_.size()];
    }

    /** Newest element; undefined when empty. */
    const T &back() const { return at(size() - 1); }

    /** Visit all retained elements, oldest to newest. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < data_.size(); ++i)
            fn(at(i));
    }

  private:
    std::size_t capacity_;
    std::vector<T> data_;
    std::size_t head_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace tcm::telemetry
