#include "telemetry/sink.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>

#include "common/numfmt.hpp"

namespace tcm::telemetry {

namespace {

/** Geometric ladder matching mem::LatencyTracker's reporting range. */
stats::Histogram
lifecycleLadder()
{
    return stats::Histogram::exponential(25.0, 1.5, 28);
}

void
writeOrThrow(const std::string &path,
             const std::function<void(std::FILE *)> &body)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        throw std::runtime_error("telemetry: cannot write " + path);
    body(f);
    if (std::ferror(f)) {
        std::fclose(f);
        throw std::runtime_error("telemetry: write error on " + path);
    }
    std::fclose(f);
}

/** JSON value for a gauge: the number, or null when not measured. */
std::string
jsonGauge(double v)
{
    return hasGauge(v) ? jsonNumber(v) : std::string("null");
}

} // namespace

const std::string &
DecisionEvent::arg(const std::string &key) const
{
    static const std::string kEmpty;
    for (const auto &[k, v] : args)
        if (k == key)
            return v;
    return kEmpty;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no NaN/Infinity
    // Locale-independent shortest round-trip form: goldens diffed across
    // platforms must not depend on LC_NUMERIC or printf rounding.
    return formatDouble(v);
}

std::string
jsonNumber(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    return buf;
}

std::string
jsonNumber(std::int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonArray(const std::vector<int> &v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += jsonNumber(static_cast<std::int64_t>(v[i]));
    }
    out += ']';
    return out;
}

std::string
jsonArray(const std::vector<double> &v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += jsonNumber(v[i]);
    }
    out += ']';
    return out;
}

TelemetrySink::ThreadLifecycle::ThreadLifecycle()
    : queueingHist(lifecycleLadder()), serviceHist(lifecycleLadder())
{
}

TelemetrySink::TelemetrySink(const TelemetryConfig &config)
    : config_(config),
      threadSamples_(config.maxSamples),
      channelSamples_(config.maxSamples),
      events_(config.maxEvents),
      simulatorSamples_(config.maxSamples)
{
}

void
TelemetrySink::addThreadSample(const ThreadSample &sample)
{
    threadSamples_.push(sample);
}

void
TelemetrySink::addChannelSample(const ChannelSample &sample)
{
    channelSamples_.push(sample);
}

void
TelemetrySink::addSimulatorSample(const SimulatorSample &sample)
{
    simulatorSamples_.push(sample);
}

void
TelemetrySink::onDecision(DecisionEvent event)
{
    events_.push(std::move(event));
}

TelemetrySink::ThreadLifecycle &
TelemetrySink::growLifecycle(ThreadId thread)
{
    if (thread >= static_cast<ThreadId>(lifecycles_.size()))
        lifecycles_.resize(thread + 1);
    return lifecycles_[thread];
}

void
TelemetrySink::recordLifecycle(ThreadId thread, Cycle queueing,
                               Cycle service)
{
    ThreadLifecycle &lc = growLifecycle(thread);
    lc.queueing.add(static_cast<double>(queueing));
    lc.service.add(static_cast<double>(service));
    lc.queueingHist.add(static_cast<double>(queueing));
    lc.serviceHist.add(static_cast<double>(service));
    ++lifecycleRecords_;
}

const DecisionEvent *
TelemetrySink::lastEvent(const std::string &name) const
{
    const DecisionEvent *found = nullptr;
    events_.forEach([&](const DecisionEvent &e) {
        if (e.name == name)
            found = &e;
    });
    return found;
}

std::vector<const DecisionEvent *>
TelemetrySink::eventsNamed(const std::string &name) const
{
    std::vector<const DecisionEvent *> out;
    events_.forEach([&](const DecisionEvent &e) {
        if (e.name == name)
            out.push_back(&e);
    });
    return out;
}

const TelemetrySink::ThreadLifecycle &
TelemetrySink::lifecycle(ThreadId thread) const
{
    static const ThreadLifecycle kEmpty;
    if (thread < 0 || thread >= static_cast<ThreadId>(lifecycles_.size()))
        return kEmpty;
    return lifecycles_[thread];
}

std::uint64_t
TelemetrySink::totalRecords() const
{
    return threadSamples_.size() + channelSamples_.size() +
           events_.size() + lifecycleRecords_;
}

std::uint64_t
TelemetrySink::droppedRecords() const
{
    return threadSamples_.dropped() + channelSamples_.dropped() +
           events_.dropped();
}

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

void
TelemetrySink::writeJsonl(std::FILE *out) const
{
    std::fprintf(out,
                 "{\"type\":\"meta\",\"scheduler\":%s,\"threads\":%d,"
                 "\"channels\":%d,\"sample_interval\":%" PRIu64
                 ",\"seed\":%" PRIu64 "}\n",
                 jsonString(meta_.scheduler).c_str(), meta_.numThreads,
                 meta_.numChannels,
                 static_cast<std::uint64_t>(meta_.sampleInterval),
                 meta_.seed);

    threadSamples_.forEach([&](const ThreadSample &s) {
        std::fprintf(out,
                     "{\"type\":\"thread_sample\",\"cycle\":%" PRIu64
                     ",\"thread\":%d,\"ipc\":%s,\"mpki\":%s,\"rbl\":%s,"
                     "\"blp\":%s,\"outstanding\":%s}\n",
                     static_cast<std::uint64_t>(s.cycle), s.thread,
                     jsonNumber(s.ipc).c_str(), jsonNumber(s.mpki).c_str(),
                     jsonGauge(s.rbl).c_str(), jsonGauge(s.blp).c_str(),
                     jsonGauge(s.outstanding).c_str());
    });

    channelSamples_.forEach([&](const ChannelSample &s) {
        std::fprintf(out,
                     "{\"type\":\"channel_sample\",\"cycle\":%" PRIu64
                     ",\"channel\":%d,\"read_q\":%u,\"write_q\":%u,"
                     "\"row_hit_rate\":%s,\"cmd_bus_util\":%s,"
                     "\"data_bus_util\":%s}\n",
                     static_cast<std::uint64_t>(s.cycle), s.channel,
                     s.readQueue, s.writeQueue,
                     jsonGauge(s.rowHitRate).c_str(),
                     jsonNumber(s.cmdBusUtil).c_str(),
                     jsonNumber(s.dataBusUtil).c_str());
    });

    events_.forEach([&](const DecisionEvent &e) {
        std::fprintf(out,
                     "{\"type\":\"event\",\"cycle\":%" PRIu64
                     ",\"name\":%s,\"cat\":%s,\"args\":{",
                     static_cast<std::uint64_t>(e.cycle),
                     jsonString(e.name).c_str(),
                     jsonString(e.category).c_str());
        for (std::size_t i = 0; i < e.args.size(); ++i)
            std::fprintf(out, "%s%s:%s", i ? "," : "",
                         jsonString(e.args[i].first).c_str(),
                         e.args[i].second.c_str());
        std::fprintf(out, "}}\n");
    });

    for (ThreadId t = 0; t < static_cast<ThreadId>(lifecycles_.size());
         ++t) {
        const ThreadLifecycle &lc = lifecycles_[t];
        if (lc.queueing.count() == 0)
            continue;
        std::fprintf(out,
                     "{\"type\":\"lifecycle\",\"thread\":%d,\"reads\":%"
                     PRIu64 ",\"queue_mean\":%s,\"queue_p99\":%s,"
                     "\"service_mean\":%s,\"service_p99\":%s}\n",
                     t, lc.queueing.count(),
                     jsonNumber(lc.queueing.mean()).c_str(),
                     jsonNumber(lc.queueingHist.percentile(0.99)).c_str(),
                     jsonNumber(lc.service.mean()).c_str(),
                     jsonNumber(lc.serviceHist.percentile(0.99)).c_str());
    }

    std::fprintf(out,
                 "{\"type\":\"tail\",\"thread_samples\":%zu,"
                 "\"channel_samples\":%zu,\"events\":%zu,"
                 "\"lifecycle_records\":%" PRIu64 ",\"dropped\":%" PRIu64
                 "}\n",
                 threadSamples_.size(), channelSamples_.size(),
                 events_.size(), lifecycleRecords_, droppedRecords());
}

void
TelemetrySink::writeJsonl(const std::string &path) const
{
    writeOrThrow(path, [this](std::FILE *f) { writeJsonl(f); });
}

// ---------------------------------------------------------------------------
// Chrome trace-event format (Perfetto / chrome://tracing)
// ---------------------------------------------------------------------------

void
TelemetrySink::writeChromeTrace(std::FILE *out) const
{
    // ts is the CPU cycle; Perfetto displays it as microseconds, which
    // keeps the timeline readable (1 "us" = 1 cycle) without scaling.
    bool first = true;
    auto sep = [&]() {
        std::fprintf(out, "%s", first ? "[\n" : ",\n");
        first = false;
    };

    sep();
    std::fprintf(out,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                 "\"tid\":0,\"args\":{\"name\":%s}}",
                 jsonString("tcmsim " + meta_.scheduler).c_str());

    threadSamples_.forEach([&](const ThreadSample &s) {
        sep();
        std::fprintf(out,
                     "{\"name\":\"t%d\",\"ph\":\"C\",\"pid\":0,\"ts\":%"
                     PRIu64 ",\"args\":{\"ipc\":%s,\"mpki\":%s",
                     s.thread, static_cast<std::uint64_t>(s.cycle),
                     jsonNumber(s.ipc).c_str(),
                     jsonNumber(s.mpki).c_str());
        if (hasGauge(s.rbl))
            std::fprintf(out, ",\"rbl\":%s", jsonNumber(s.rbl).c_str());
        if (hasGauge(s.blp))
            std::fprintf(out, ",\"blp\":%s", jsonNumber(s.blp).c_str());
        if (hasGauge(s.outstanding))
            std::fprintf(out, ",\"outstanding\":%s",
                         jsonNumber(s.outstanding).c_str());
        std::fprintf(out, "}}");
    });

    channelSamples_.forEach([&](const ChannelSample &s) {
        sep();
        std::fprintf(out,
                     "{\"name\":\"ch%d.queues\",\"ph\":\"C\",\"pid\":0,"
                     "\"ts\":%" PRIu64
                     ",\"args\":{\"read\":%u,\"write\":%u}}",
                     s.channel, static_cast<std::uint64_t>(s.cycle),
                     s.readQueue, s.writeQueue);
        sep();
        std::fprintf(out,
                     "{\"name\":\"ch%d.util\",\"ph\":\"C\",\"pid\":0,"
                     "\"ts\":%" PRIu64 ",\"args\":{\"cmd_bus\":%s,"
                     "\"data_bus\":%s",
                     s.channel, static_cast<std::uint64_t>(s.cycle),
                     jsonNumber(s.cmdBusUtil).c_str(),
                     jsonNumber(s.dataBusUtil).c_str());
        if (hasGauge(s.rowHitRate))
            std::fprintf(out, ",\"row_hit\":%s",
                         jsonNumber(s.rowHitRate).c_str());
        std::fprintf(out, "}}");
    });

    // The simulator's self-observation lane (tid 1): host wall clock
    // and cycle-skip progress from the attached profiler. Chrome-trace
    // only — the JSONL stream never carries these (bit-identity).
    if (!simulatorSamples_.empty()) {
        sep();
        std::fprintf(out,
                     "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                     "\"tid\":1,\"args\":{\"name\":\"simulator\"}}");
        simulatorSamples_.forEach([&](const SimulatorSample &s) {
            sep();
            std::fprintf(out,
                         "{\"name\":\"sim.wall_ms\",\"ph\":\"C\",\"pid\":0,"
                         "\"tid\":1,\"ts\":%" PRIu64
                         ",\"args\":{\"wall_ms\":%s}}",
                         static_cast<std::uint64_t>(s.cycle),
                         jsonNumber(s.wallMs).c_str());
            sep();
            std::fprintf(out,
                         "{\"name\":\"sim.skip\",\"ph\":\"C\",\"pid\":0,"
                         "\"tid\":1,\"ts\":%" PRIu64
                         ",\"args\":{\"skips\":%" PRIu64
                         ",\"skipped_cycles\":%" PRIu64 "}}",
                         static_cast<std::uint64_t>(s.cycle), s.skips,
                         s.skippedCycles);
        });
    }

    events_.forEach([&](const DecisionEvent &e) {
        sep();
        std::fprintf(out,
                     "{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"ts\":%" PRIu64
                     ",\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{",
                     jsonString(e.name).c_str(),
                     jsonString(e.category).c_str(),
                     static_cast<std::uint64_t>(e.cycle));
        for (std::size_t i = 0; i < e.args.size(); ++i)
            std::fprintf(out, "%s%s:%s", i ? "," : "",
                         jsonString(e.args[i].first).c_str(),
                         e.args[i].second.c_str());
        std::fprintf(out, "}}");
    });

    std::fprintf(out, "%s", first ? "[]\n" : "\n]\n");
}

void
TelemetrySink::writeChromeTrace(const std::string &path) const
{
    writeOrThrow(path, [this](std::FILE *f) { writeChromeTrace(f); });
}

} // namespace tcm::telemetry
