/**
 * @file
 * Telemetry sinks: the interfaces the simulation layers push into, and
 * the in-memory TelemetrySink that aggregates everything one run emits
 * and serializes it to JSONL or Chrome trace-event format (Perfetto).
 */

#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/running_stat.hpp"
#include "common/types.hpp"
#include "stats/histogram.hpp"
#include "telemetry/telemetry.hpp"

namespace tcm::telemetry {

/**
 * Receives scheduler-decision events. Schedulers hold a nullable
 * pointer to one of these (SchedulerPolicy::setDecisionSink) and emit
 * only when attached — the detached cost is one branch per decision
 * point (quantum boundary, batch formation), never per cycle.
 */
class DecisionSink
{
  public:
    virtual ~DecisionSink() = default;

    virtual void onDecision(DecisionEvent event) = 0;
};

/**
 * Receives per-read lifecycle breakdowns from a memory controller:
 * @p queueing cycles from controller-queue arrival to the column
 * command (scheduling delay), @p service cycles from the column command
 * to data delivery at the core.
 */
class LifecycleSink
{
  public:
    virtual ~LifecycleSink() = default;

    virtual void recordLifecycle(ThreadId thread, Cycle queueing,
                                 Cycle service) = 0;
};

/**
 * Everything one run's telemetry recorded, in one value type: interval
 * time series (ring-buffered), the decision-event trace, and per-thread
 * lifecycle latency statistics. One sink serves exactly one run — the
 * parallel experiment runner creates one per worker task, so sinks need
 * no internal synchronization.
 */
class TelemetrySink : public DecisionSink, public LifecycleSink
{
  public:
    /** Run identity stamped into the serialized output. */
    struct Meta
    {
        std::string scheduler;
        int numThreads = 0;
        int numChannels = 0;
        Cycle sampleInterval = 0;
        std::uint64_t seed = 0;
    };

    /** Per-thread lifecycle statistics (reads only). */
    struct ThreadLifecycle
    {
        RunningStat queueing;
        RunningStat service;
        stats::Histogram queueingHist;
        stats::Histogram serviceHist;

        ThreadLifecycle();
    };

    explicit TelemetrySink(const TelemetryConfig &config = {});

    const TelemetryConfig &config() const { return config_; }

    void setMeta(Meta meta) { meta_ = std::move(meta); }
    const Meta &meta() const { return meta_; }

    // -- ingestion ----------------------------------------------------------

    void addThreadSample(const ThreadSample &sample);
    void addChannelSample(const ChannelSample &sample);

    /**
     * Profiler self-observation sample (simulator wall clock / skip
     * progress). Rendered only in the Chrome trace "simulator" lane;
     * deliberately excluded from writeJsonl and droppedRecords() so the
     * JSONL bytes stay identical with and without a profiler attached.
     */
    void addSimulatorSample(const SimulatorSample &sample);

    void onDecision(DecisionEvent event) override;

    void recordLifecycle(ThreadId thread, Cycle queueing,
                         Cycle service) override;

    // -- introspection (tests, reports) -------------------------------------

    const RingBuffer<ThreadSample> &threadSamples() const { return threadSamples_; }
    const RingBuffer<ChannelSample> &channelSamples() const { return channelSamples_; }
    const RingBuffer<DecisionEvent> &events() const { return events_; }
    const RingBuffer<SimulatorSample> &simulatorSamples() const
    {
        return simulatorSamples_;
    }

    /** Newest retained event named @p name, or nullptr. */
    const DecisionEvent *lastEvent(const std::string &name) const;

    /** Retained events named @p name, oldest to newest. */
    std::vector<const DecisionEvent *>
    eventsNamed(const std::string &name) const;

    /** Lifecycle stats of @p thread (empty stats when never recorded). */
    const ThreadLifecycle &lifecycle(ThreadId thread) const;

    int lifecycleMaxThread() const
    {
        return static_cast<int>(lifecycles_.size()) - 1;
    }

    /** Total telemetry records ingested (samples + events + lifecycle). */
    std::uint64_t totalRecords() const;

    /** Lifecycle records ingested. */
    std::uint64_t lifecycleRecords() const { return lifecycleRecords_; }

    /** Samples/events evicted by the ring capacity bounds. */
    std::uint64_t droppedRecords() const;

    // -- serialization ------------------------------------------------------

    /**
     * One self-describing JSON object per line: a `meta` header, every
     * retained `thread_sample` / `channel_sample` / `event` in cycle
     * order per series, per-thread `lifecycle` summaries, and a `tail`
     * line with drop counts. Throws std::runtime_error on I/O failure.
     */
    void writeJsonl(const std::string &path) const;
    void writeJsonl(std::FILE *out) const;

    /**
     * Chrome trace-event JSON array, loadable in Perfetto / chrome://
     * tracing: counter tracks for the interval series, instant events
     * for scheduler decisions (ts = CPU cycle). Throws on I/O failure.
     */
    void writeChromeTrace(const std::string &path) const;
    void writeChromeTrace(std::FILE *out) const;

  private:
    ThreadLifecycle &growLifecycle(ThreadId thread);

    TelemetryConfig config_;
    Meta meta_;
    RingBuffer<ThreadSample> threadSamples_;
    RingBuffer<ChannelSample> channelSamples_;
    RingBuffer<DecisionEvent> events_;
    RingBuffer<SimulatorSample> simulatorSamples_;
    std::vector<ThreadLifecycle> lifecycles_;
    std::uint64_t lifecycleRecords_ = 0;
};

} // namespace tcm::telemetry
