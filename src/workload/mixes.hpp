/**
 * @file
 * Multiprogrammed workload construction (Table 5 and random mixes).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "workload/profile.hpp"

namespace tcm::workload {

/**
 * The four representative 24-thread workloads of Table 5 (each 50 %
 * memory-intensive). @p which is 'A'..'D'.
 *
 * Note: the paper's Table 5 as extracted swaps the "memory-intensive" and
 * "memory-non-intensive" column headers (calculix at 0.10 MPKI is plainly
 * non-intensive); the transcription here restores them.
 */
std::vector<ThreadProfile> tableFiveWorkload(char which);

/**
 * A random multiprogrammed mix in the paper's style: @p numThreads
 * benchmarks sampled with replacement, of which round(fracIntensive *
 * numThreads) come from the memory-intensive class and the rest from the
 * non-intensive class. Deterministic in @p seed.
 */
std::vector<ThreadProfile> randomMix(int numThreads, double fracIntensive,
                                     std::uint64_t seed);

/**
 * The paper's workload population for a given intensity category:
 * @p count random mixes at @p fracIntensive, seeded deterministically
 * from @p baseSeed.
 */
std::vector<std::vector<ThreadProfile>>
workloadSet(int count, int numThreads, double fracIntensive,
            std::uint64_t baseSeed);

/**
 * The hand-constructed threads of Table 1: a random-access thread
 * (MPKI 100, high BLP, near-zero RBL) and a streaming thread (MPKI 100,
 * BLP ~1, RBL 99 %).
 */
ThreadProfile randomAccessThread();
ThreadProfile streamingThread();

} // namespace tcm::workload
