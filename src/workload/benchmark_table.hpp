/**
 * @file
 * Table 4: SPEC CPU2006 benchmark characteristics, as synthetic clones.
 */

#pragma once

#include <string_view>
#include <vector>

#include "workload/profile.hpp"

namespace tcm::workload {

/**
 * The 25 SPEC CPU2006 benchmarks of the paper's Table 4, transcribed as
 * (MPKI, RBL, BLP) profiles for the synthetic clone generator. BLP values
 * are absolute bank counts on the paper's 16-bank baseline.
 *
 * Note: the paper's Table 4 as extracted garbles the MPKI/RBL columns for
 * rows 1-13 (percent signs attach to the wrong column); this table
 * restores the intended column order, which rows 14-25 show cleanly.
 */
const std::vector<ThreadProfile> &benchmarkTable();

/**
 * Look up a benchmark clone by name ("mcf", "libquantum", ...).
 * Throws std::out_of_range for unknown names.
 */
ThreadProfile benchmarkProfile(std::string_view name);

/** All profiles with MPKI >= 1 (the paper's memory-intensive class). */
std::vector<ThreadProfile> intensiveBenchmarks();

/** All profiles with MPKI < 1. */
std::vector<ThreadProfile> nonIntensiveBenchmarks();

} // namespace tcm::workload
