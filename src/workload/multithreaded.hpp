/**
 * @file
 * Barrier-coupled multithreaded workloads (paper Section 3.7).
 *
 * The paper distinguishes multithreaded applications whose threads run
 * mostly independently (they behave like multiprogrammed mixes) from
 * those that synchronize frequently, where execution time is set by the
 * slowest — critical — thread. This module models the second kind: a
 * BarrierGroup of threads that must all finish a phase of useful work
 * before any may start the next one. Threads that arrive early spin on
 * a shared lock line (occasional same-row reads), exactly the traffic a
 * real spin-wait emits.
 *
 * The paper's proposed extension — "TCM can be extended to incorporate
 * the notion of thread criticality to properly identify and prioritize
 * critical threads" — maps onto the existing thread-weight support:
 * give the lagging thread a higher weight and the whole group's phase
 * rate improves (see examples/multithreaded_app.cpp).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/trace.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic_trace.hpp"

namespace tcm::workload {

/**
 * Shared synchronization state of one multithreaded application.
 * Threads report the phase they have completed; a phase is released
 * when every member has completed it.
 */
class BarrierGroup
{
  public:
    /**
     * @param numMembers threads in the group
     * @param instructionsPerPhase useful instructions per phase per thread
     */
    BarrierGroup(int numMembers, std::uint64_t instructionsPerPhase);

    std::uint64_t instructionsPerPhase() const { return instrPerPhase_; }
    int numMembers() const { return static_cast<int>(reached_.size()); }

    /** Member @p m has completed phase @p phase. */
    void memberReached(int m, std::uint64_t phase);

    /** True if phase @p phase is released (all members completed it). */
    bool phaseReleased(std::uint64_t phase) const;

    /** Phases the whole group has completed (the app's progress metric). */
    std::uint64_t phasesCompleted() const;

  private:
    std::uint64_t instrPerPhase_;
    std::vector<std::uint64_t> reached_;
};

/**
 * Wraps a SyntheticTrace in barrier semantics: after emitting
 * instructionsPerPhase useful instructions, the thread must wait for its
 * group; while waiting it emits spin items (a read of the group's lock
 * line preceded by a small compute gap). Spin instructions do not count
 * toward phase progress.
 */
class BarrierCoupledTrace : public core::TraceSource
{
  public:
    /**
     * @param member index of this thread within @p group
     * @param lockChannel / lockBank / lockRow the shared lock line
     */
    BarrierCoupledTrace(const ThreadProfile &profile,
                        const Geometry &geometry, std::uint64_t seed,
                        BarrierGroup *group, int member,
                        ChannelId lockChannel = 0, BankId lockBank = 0,
                        RowId lockRow = 0);

    core::TraceItem next() override;

    std::uint64_t spinReads() const { return spinReads_; }

  private:
    SyntheticTrace inner_;
    BarrierGroup *group_;
    int member_;
    core::MemAccess lockLine_;

    std::uint64_t phase_ = 0;
    std::uint64_t instrThisPhase_ = 0;
    core::TraceItem pending_{};
    bool havePending_ = false;
    std::uint64_t spinReads_ = 0;
};

} // namespace tcm::workload
