/**
 * @file
 * On-disk trace format: capture and replay of instruction streams.
 *
 * The simulator normally runs generative synthetic traces, but a
 * downstream user with real traces (Pin, DynamoRIO, perf mem, ...) can
 * convert them to this format and replay them unchanged. The format is
 * deliberately simple: a fixed header naming the DRAM geometry the
 * coordinates were mapped against, then fixed-width records of
 * core::TraceItem fields.
 *
 * Layout (all fields little-endian on all supported hosts):
 *   header:  magic "TCMT", u32 version, u32 numChannels,
 *            u32 banksPerChannel, u32 rowsPerBank, u32 colsPerRow,
 *            u64 recordCount
 *   record:  u32 gap, u8 isWrite, u8 channel, u8 bank, u8 pad,
 *            u32 row, u32 col                      (16 bytes)
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "workload/synthetic_trace.hpp"

namespace tcm::workload {

/** Raised on malformed trace files or geometry mismatches. */
class TraceFileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Streams trace items into a file. */
class TraceWriter
{
  public:
    /** Create/truncate @p path and write the header. Throws on I/O error. */
    TraceWriter(const std::string &path, const Geometry &geometry);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one item. */
    void write(const core::TraceItem &item);

    /** Flush, backpatch the record count, and close. */
    void close();

    std::uint64_t recordsWritten() const { return count_; }

  private:
    struct Impl;
    Impl *impl_;
    std::uint64_t count_ = 0;
};

/**
 * Replays a trace file as an infinite stream by looping: after the last
 * record, replay restarts from the first (the standard convention for
 * finite traces driving fixed-length simulations).
 */
class FileTrace : public core::TraceSource
{
  public:
    /**
     * Load @p path fully into memory. @p systemGeometry is the geometry
     * of the simulated machine; the trace's coordinates must fit inside
     * it or FileTrace throws TraceFileError.
     */
    FileTrace(const std::string &path, const Geometry &systemGeometry);

    core::TraceItem next() override;

    std::size_t size() const { return items_.size(); }
    const Geometry &traceGeometry() const { return geometry_; }

  private:
    std::vector<core::TraceItem> items_;
    Geometry geometry_;
    std::size_t pos_ = 0;
};

/**
 * Convenience: capture @p count items of a synthetic clone to @p path
 * (what the tools/tracegen utility does).
 */
void captureSyntheticTrace(const ThreadProfile &profile,
                           const Geometry &geometry, std::uint64_t seed,
                           std::uint64_t count, const std::string &path);

/**
 * Dump a binary trace as text, one record per line:
 *   `<gap> <R|W> <channel> <bank> <row> <col>`
 * preceded by a `# geometry: channels banks rows cols` comment.
 * This is the interchange format for users converting real traces.
 */
void dumpTraceAsText(const std::string &binPath,
                     const std::string &textPath);

/**
 * Convert the text format above into a binary trace. Lines starting
 * with '#' are comments; the first must be the geometry line. Throws
 * TraceFileError on malformed input.
 */
void convertTextTrace(const std::string &textPath,
                      const std::string &binPath);

} // namespace tcm::workload
