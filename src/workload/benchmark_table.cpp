#include "workload/benchmark_table.hpp"

#include <stdexcept>
#include <string>

namespace tcm::workload {

namespace {

ThreadProfile
make(const char *name, double mpki, double rblPercent, double blp)
{
    ThreadProfile p;
    p.name = name;
    p.mpki = mpki;
    p.rbl = rblPercent / 100.0;
    p.blp = blp;
    return p;
}

} // namespace

const std::vector<ThreadProfile> &
benchmarkTable()
{
    static const std::vector<ThreadProfile> table = {
        make("mcf", 97.38, 42.41, 6.20),
        make("libquantum", 50.00, 99.22, 1.05),
        make("leslie3d", 49.35, 91.18, 1.51),
        make("soplex", 46.70, 88.84, 1.79),
        make("lbm", 43.52, 95.17, 2.82),
        make("GemsFDTD", 31.79, 56.22, 3.15),
        make("sphinx3", 24.94, 84.78, 2.24),
        make("xalancbmk", 22.95, 72.01, 2.35),
        make("omnetpp", 21.63, 45.71, 4.37),
        make("cactusADM", 12.01, 19.05, 1.43),
        make("astar", 9.26, 75.24, 1.61),
        make("hmmer", 5.66, 34.42, 1.25),
        make("bzip2", 3.98, 71.44, 1.87),
        make("h264ref", 2.30, 90.34, 1.19),
        make("gromacs", 0.98, 89.25, 1.54),
        make("gobmk", 0.77, 65.76, 1.52),
        make("sjeng", 0.39, 12.47, 1.57),
        make("gcc", 0.34, 70.92, 1.96),
        make("dealII", 0.21, 86.83, 1.22),
        make("wrf", 0.21, 92.34, 1.23),
        make("namd", 0.19, 93.05, 1.16),
        make("perlbench", 0.12, 81.59, 1.66),
        make("calculix", 0.10, 88.71, 1.20),
        make("tonto", 0.03, 88.60, 1.81),
        make("povray", 0.01, 87.22, 1.43),
    };
    return table;
}

ThreadProfile
benchmarkProfile(std::string_view name)
{
    for (const ThreadProfile &p : benchmarkTable())
        if (p.name == name)
            return p;
    throw std::out_of_range("unknown benchmark: " + std::string(name));
}

std::vector<ThreadProfile>
intensiveBenchmarks()
{
    std::vector<ThreadProfile> out;
    for (const ThreadProfile &p : benchmarkTable())
        if (p.memoryIntensive())
            out.push_back(p);
    return out;
}

std::vector<ThreadProfile>
nonIntensiveBenchmarks()
{
    std::vector<ThreadProfile> out;
    for (const ThreadProfile &p : benchmarkTable())
        if (!p.memoryIntensive())
            out.push_back(p);
    return out;
}

} // namespace tcm::workload
