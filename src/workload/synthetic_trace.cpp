#include "workload/synthetic_trace.hpp"

#include <algorithm>
#include <cmath>

namespace tcm::workload {

SyntheticTrace::SyntheticTrace(const ThreadProfile &profile,
                               const Geometry &geometry, std::uint64_t seed)
    : profile_(profile), geom_(geometry), rng_(seed, seed ^ 0x9e3779b97f4a7c15ULL)
{
    double blp = std::clamp(profile_.blp, 1.0,
                            static_cast<double>(geom_.totalBanks()));
    profile_.blp = blp;
    int num_streams = static_cast<int>(std::ceil(blp));

    // Pin each stream to a distinct bank, walking channels first so a
    // high-BLP thread spreads across all controllers (as real benchmarks
    // with cache-block channel interleaving do).
    int base = static_cast<int>(rng_.nextBelow(
        static_cast<std::uint32_t>(geom_.totalBanks())));
    streams_.reserve(num_streams);
    for (int s = 0; s < num_streams; ++s) {
        int global = (base + s) % geom_.totalBanks();
        Stream st;
        st.channel = static_cast<ChannelId>(global % geom_.numChannels);
        st.bank = static_cast<BankId>((global / geom_.numChannels) %
                                      geom_.banksPerChannel);
        st.row = static_cast<RowId>(rng_.nextBelow(geom_.rowsPerBank));
        st.col = static_cast<ColId>(rng_.nextBelow(geom_.colsPerRow));
        streams_.push_back(st);
    }

    double mpki = std::max(profile_.mpki, 1e-4);
    meanGapPerMiss_ = std::max(0.0, 1000.0 / mpki - 1.0);
}

void
SyntheticTrace::startEpisode()
{
    double blp = profile_.blp;
    int lo = static_cast<int>(std::floor(blp));
    double frac = blp - lo;
    int size = lo + (rng_.nextBool(frac) ? 1 : 0);
    size = std::clamp(size, 1, static_cast<int>(streams_.size()));

    episodeRemaining_ = size;
    episodePos_ = 0;
    // Episodes always start at stream 0: a small episode from a
    // fractional-BLP thread must reuse the same primary stream, so that
    // overlapping episodes in the instruction window keep the number of
    // concurrently loaded banks at the BLP target instead of slowly
    // touching every stream.

    // The whole episode's instruction gap is attached to its first miss.
    gapValue_ = rng_.nextGeometric(meanGapPerMiss_ * size);
    gapPending_ = true;
}

core::MemAccess
SyntheticTrace::accessFromStream(int streamIdx)
{
    Stream &st = streams_[streamIdx];
    if (rng_.nextBool(profile_.rbl)) {
        st.col = (st.col + 1) % geom_.colsPerRow; // row hit (same row)
    } else {
        // Row change: real streams also move banks here (array walks
        // cross bank boundaries, pointer chases land anywhere).
        int global = static_cast<int>(
            rng_.nextBelow(static_cast<std::uint32_t>(geom_.totalBanks())));
        st.channel = static_cast<ChannelId>(global % geom_.numChannels);
        st.bank = static_cast<BankId>((global / geom_.numChannels) %
                                      geom_.banksPerChannel);
        st.row = static_cast<RowId>(rng_.nextBelow(geom_.rowsPerBank));
        st.col = static_cast<ColId>(rng_.nextBelow(geom_.colsPerRow));
    }
    core::MemAccess acc;
    acc.isWrite = false;
    acc.channel = st.channel;
    acc.bank = st.bank;
    acc.row = st.row;
    acc.col = st.col;
    return acc;
}

core::TraceItem
SyntheticTrace::next()
{
    core::TraceItem item;

    if (writePending_) {
        writePending_ = false;
        item.gap = 0;
        item.access = pendingWrite_;
        return item;
    }

    if (episodeRemaining_ == 0)
        startEpisode();

    int stream = episodePos_ % static_cast<int>(streams_.size());
    ++episodePos_;
    --episodeRemaining_;

    item.gap = gapPending_ ? gapValue_ : 0;
    gapPending_ = false;
    item.access = accessFromStream(stream);

    // A dirty eviction accompanies some misses: same bank, old row.
    if (rng_.nextBool(profile_.writeFraction)) {
        pendingWrite_ = item.access;
        pendingWrite_.isWrite = true;
        pendingWrite_.row =
            static_cast<RowId>(rng_.nextBelow(geom_.rowsPerBank));
        pendingWrite_.col =
            static_cast<ColId>(rng_.nextBelow(geom_.colsPerRow));
        writePending_ = true;
    }
    return item;
}

} // namespace tcm::workload
