/**
 * @file
 * The three-axis characterization of a thread's memory access behaviour.
 */

#pragma once

#include <string>
#include <tuple>

#include "common/types.hpp"

namespace tcm::workload {

/**
 * A thread's memory behaviour as the paper defines it (Section 2.1):
 * memory intensity (MPKI), row-buffer locality (RBL in [0,1]) and
 * bank-level parallelism (BLP in banks). The synthetic trace generator
 * turns a profile into an instruction stream whose *measured* MPKI/RBL/BLP
 * match these targets (verified by bench_table4_profiles).
 */
struct ThreadProfile
{
    std::string name = "synthetic";
    double mpki = 1.0;          //!< L2 misses per kilo-instruction
    double rbl = 0.5;           //!< row-buffer locality, fraction in [0,1]
    double blp = 1.0;           //!< avg banks with outstanding requests
    double writeFraction = 0.25; //!< writebacks per read miss
    int weight = 1;             //!< OS-assigned thread weight (Section 3.6)

    /** The paper's intensity classification: MPKI >= 1 is intensive. */
    bool memoryIntensive() const { return mpki >= 1.0; }

    /**
     * All fields that determine this thread's behaviour when running
     * *alone* — the memoization key of sim::AloneIpcCache. The synthetic
     * trace stream is a function of exactly (mpki, rbl, blp,
     * writeFraction) plus the DRAM geometry and seed, which the cache
     * holds per instance. Deliberately excluded: `weight` (a scheduler
     * input that is meaningless without competitors; the alone run
     * forces it to 1) and `name` (a label with no behavioural effect).
     *
     * If you add a behaviour-affecting field to ThreadProfile, it MUST
     * be added here, or distinct profiles will alias one cache entry
     * and corrupt every slowdown metric. tests/test_sim.cpp's
     * AloneCache.KeyCoversEveryBehaviorField audits this field by field.
     */
    using AloneBehaviorKey = std::tuple<double, double, double, double>;
    AloneBehaviorKey
    aloneBehaviorKey() const
    {
        return {mpki, rbl, blp, writeFraction};
    }
};

} // namespace tcm::workload
