#include "workload/mixes.hpp"

#include <cmath>
#include <stdexcept>

#include "common/random.hpp"
#include "workload/benchmark_table.hpp"

namespace tcm::workload {

namespace {

void
addCopies(std::vector<ThreadProfile> &out, const char *name, int copies)
{
    ThreadProfile p = benchmarkProfile(name);
    for (int i = 0; i < copies; ++i)
        out.push_back(p);
}

} // namespace

std::vector<ThreadProfile>
tableFiveWorkload(char which)
{
    std::vector<ThreadProfile> w;
    w.reserve(24);
    switch (which) {
      case 'A':
        // non-intensive half
        addCopies(w, "calculix", 3);
        addCopies(w, "dealII", 1);
        addCopies(w, "gcc", 1);
        addCopies(w, "gromacs", 2);
        addCopies(w, "namd", 1);
        addCopies(w, "perlbench", 1);
        addCopies(w, "povray", 1);
        addCopies(w, "sjeng", 1);
        addCopies(w, "tonto", 1);
        // intensive half
        addCopies(w, "mcf", 1);
        addCopies(w, "soplex", 2);
        addCopies(w, "lbm", 2);
        addCopies(w, "leslie3d", 1);
        addCopies(w, "sphinx3", 1);
        addCopies(w, "xalancbmk", 1);
        addCopies(w, "omnetpp", 1);
        addCopies(w, "astar", 1);
        addCopies(w, "hmmer", 2);
        break;
      case 'B':
        addCopies(w, "gcc", 2);
        addCopies(w, "gobmk", 3);
        addCopies(w, "namd", 2);
        addCopies(w, "perlbench", 3);
        addCopies(w, "sjeng", 1);
        addCopies(w, "wrf", 1);
        addCopies(w, "bzip2", 2);
        addCopies(w, "cactusADM", 3);
        addCopies(w, "GemsFDTD", 1);
        addCopies(w, "h264ref", 2);
        addCopies(w, "hmmer", 1);
        addCopies(w, "libquantum", 2);
        addCopies(w, "sphinx3", 1);
        break;
      case 'C':
        addCopies(w, "calculix", 2);
        addCopies(w, "dealII", 2);
        addCopies(w, "gromacs", 2);
        addCopies(w, "namd", 1);
        addCopies(w, "perlbench", 2);
        addCopies(w, "povray", 1);
        addCopies(w, "tonto", 1);
        addCopies(w, "wrf", 1);
        addCopies(w, "GemsFDTD", 2);
        addCopies(w, "libquantum", 3);
        addCopies(w, "cactusADM", 1);
        addCopies(w, "astar", 1);
        addCopies(w, "omnetpp", 1);
        addCopies(w, "bzip2", 1);
        addCopies(w, "soplex", 3);
        break;
      case 'D':
        addCopies(w, "calculix", 1);
        addCopies(w, "dealII", 1);
        addCopies(w, "gcc", 1);
        addCopies(w, "gromacs", 1);
        addCopies(w, "perlbench", 1);
        addCopies(w, "povray", 2);
        addCopies(w, "sjeng", 2);
        addCopies(w, "tonto", 3);
        addCopies(w, "omnetpp", 1);
        addCopies(w, "bzip2", 2);
        addCopies(w, "h264ref", 1);
        addCopies(w, "cactusADM", 1);
        addCopies(w, "astar", 1);
        addCopies(w, "soplex", 1);
        addCopies(w, "lbm", 2);
        addCopies(w, "leslie3d", 1);
        addCopies(w, "xalancbmk", 2);
        break;
      default:
        throw std::invalid_argument("tableFiveWorkload: expected 'A'..'D'");
    }
    return w;
}

std::vector<ThreadProfile>
randomMix(int numThreads, double fracIntensive, std::uint64_t seed)
{
    const std::vector<ThreadProfile> intensive = intensiveBenchmarks();
    const std::vector<ThreadProfile> light = nonIntensiveBenchmarks();
    Pcg32 rng(seed, 0x5bd1e995u);

    int numIntensive = static_cast<int>(
        std::lround(fracIntensive * numThreads));
    std::vector<ThreadProfile> w;
    w.reserve(numThreads);
    for (int i = 0; i < numIntensive; ++i)
        w.push_back(intensive[rng.nextBelow(
            static_cast<std::uint32_t>(intensive.size()))]);
    for (int i = numIntensive; i < numThreads; ++i)
        w.push_back(light[rng.nextBelow(
            static_cast<std::uint32_t>(light.size()))]);
    return w;
}

std::vector<std::vector<ThreadProfile>>
workloadSet(int count, int numThreads, double fracIntensive,
            std::uint64_t baseSeed)
{
    std::vector<std::vector<ThreadProfile>> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i)
        out.push_back(randomMix(numThreads, fracIntensive,
                                baseSeed + 1000003ULL * (i + 1)));
    return out;
}

ThreadProfile
randomAccessThread()
{
    ThreadProfile p;
    p.name = "random-access";
    p.mpki = 100.0;
    p.rbl = 0.001;
    p.blp = 11.6; // 72.7 % of 16 banks
    return p;
}

ThreadProfile
streamingThread()
{
    ThreadProfile p;
    p.name = "streaming";
    p.mpki = 100.0;
    p.rbl = 0.99;
    p.blp = 1.0; // 0.3 % of max -> effectively a single bank at a time
    return p;
}

} // namespace tcm::workload
