/**
 * @file
 * Generative stand-in for SPEC CPU2006 PinPoints traces.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "core/trace.hpp"
#include "workload/profile.hpp"

namespace tcm::workload {

/** DRAM geometry the generator lays streams out over. */
struct Geometry
{
    int numChannels = 4;
    int banksPerChannel = 4;
    int rowsPerBank = 16384;
    int colsPerRow = 64;

    int totalBanks() const { return numChannels * banksPerChannel; }
};

/**
 * Produces an infinite instruction stream whose measured memory
 * intensity, row-buffer locality and bank-level parallelism match a
 * ThreadProfile:
 *
 *  - Misses arrive in *episodes* of B back-to-back misses (B alternates
 *    between floor(blp) and ceil(blp) so the average episode size equals
 *    the BLP target), each episode followed by a geometrically
 *    distributed gap of plain instructions sized so that overall MPKI
 *    matches.
 *  - The generator maintains ceil(blp) *streams*; an episode walks
 *    streams 0..B-1, so its misses land in (mostly) distinct banks and
 *    overlap in the window — which is exactly what bank-level
 *    parallelism is.
 *  - Within a stream, each access stays in the current row (next column)
 *    with probability rbl; otherwise it jumps to a random row in a
 *    random bank. Bank movement on row changes is what real streams do
 *    (an array walk crosses bank boundaries; a pointer chase lands
 *    anywhere), and it is what makes a streaming thread hammer "a bank
 *    at a given time" rather than one bank forever (paper Section 2.4).
 *  - After a read miss, a writeback to the same bank (random row) is
 *    emitted with probability writeFraction.
 *
 * The sequence depends only on (profile, geometry, seed), never on
 * simulation timing, so alone and shared runs execute identical streams.
 */
class SyntheticTrace : public core::TraceSource
{
  public:
    SyntheticTrace(const ThreadProfile &profile, const Geometry &geometry,
                   std::uint64_t seed);

    core::TraceItem next() override;

    int numStreams() const { return static_cast<int>(streams_.size()); }

  private:
    struct Stream
    {
        ChannelId channel;
        BankId bank;
        RowId row;
        ColId col;
    };

    void startEpisode();
    core::MemAccess accessFromStream(int streamIdx);

    ThreadProfile profile_;
    Geometry geom_;
    Pcg32 rng_;
    std::vector<Stream> streams_;

    int episodeRemaining_ = 0;
    int episodePos_ = 0;    //!< index within the episode
    bool gapPending_ = false;
    std::uint64_t gapValue_ = 0;
    bool writePending_ = false;
    core::MemAccess pendingWrite_;
    double meanGapPerMiss_ = 0.0;
};

} // namespace tcm::workload
