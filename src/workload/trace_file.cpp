#include "workload/trace_file.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

namespace tcm::workload {

namespace {

constexpr char kMagic[4] = {'T', 'C', 'M', 'T'};
constexpr std::uint32_t kVersion = 1;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint32_t numChannels;
    std::uint32_t banksPerChannel;
    std::uint32_t rowsPerBank;
    std::uint32_t colsPerRow;
    std::uint64_t recordCount;
};
static_assert(sizeof(Header) == 32, "header layout must be stable");

struct Record
{
    std::uint32_t gap;
    std::uint8_t isWrite;
    std::uint8_t channel;
    std::uint8_t bank;
    std::uint8_t pad;
    std::uint32_t row;
    std::uint32_t col;
};
static_assert(sizeof(Record) == 16, "record layout must be stable");

} // namespace

struct TraceWriter::Impl
{
    std::FILE *file = nullptr;
    Header header{};
};

TraceWriter::TraceWriter(const std::string &path, const Geometry &geometry)
    : impl_(new Impl)
{
    impl_->file = std::fopen(path.c_str(), "wb");
    if (!impl_->file) {
        delete impl_;
        throw TraceFileError("cannot open trace file for writing: " + path);
    }
    std::memcpy(impl_->header.magic, kMagic, 4);
    impl_->header.version = kVersion;
    impl_->header.numChannels = geometry.numChannels;
    impl_->header.banksPerChannel = geometry.banksPerChannel;
    impl_->header.rowsPerBank = geometry.rowsPerBank;
    impl_->header.colsPerRow = geometry.colsPerRow;
    impl_->header.recordCount = 0;
    std::fwrite(&impl_->header, sizeof(Header), 1, impl_->file);
}

TraceWriter::~TraceWriter()
{
    if (impl_) {
        close();
        delete impl_;
        impl_ = nullptr;
    }
}

void
TraceWriter::write(const core::TraceItem &item)
{
    if (!impl_->file)
        throw TraceFileError("trace writer already closed");
    if (item.gap > 0xffffffffULL)
        throw TraceFileError("gap too large for trace record");
    Record rec{};
    rec.gap = static_cast<std::uint32_t>(item.gap);
    rec.isWrite = item.access.isWrite ? 1 : 0;
    rec.channel = static_cast<std::uint8_t>(item.access.channel);
    rec.bank = static_cast<std::uint8_t>(item.access.bank);
    rec.row = static_cast<std::uint32_t>(item.access.row);
    rec.col = static_cast<std::uint32_t>(item.access.col);
    if (std::fwrite(&rec, sizeof(Record), 1, impl_->file) != 1)
        throw TraceFileError("short write to trace file");
    ++count_;
}

void
TraceWriter::close()
{
    if (!impl_ || !impl_->file)
        return;
    impl_->header.recordCount = count_;
    std::fseek(impl_->file, 0, SEEK_SET);
    std::fwrite(&impl_->header, sizeof(Header), 1, impl_->file);
    std::fclose(impl_->file);
    impl_->file = nullptr;
}

FileTrace::FileTrace(const std::string &path, const Geometry &systemGeometry)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw TraceFileError("cannot open trace file: " + path);

    Header header{};
    if (std::fread(&header, sizeof(Header), 1, f) != 1) {
        std::fclose(f);
        throw TraceFileError("trace file too short: " + path);
    }
    if (std::memcmp(header.magic, kMagic, 4) != 0 ||
        header.version != kVersion) {
        std::fclose(f);
        throw TraceFileError("not a tcmsim trace (bad magic/version): " +
                             path);
    }
    geometry_.numChannels = static_cast<int>(header.numChannels);
    geometry_.banksPerChannel = static_cast<int>(header.banksPerChannel);
    geometry_.rowsPerBank = static_cast<int>(header.rowsPerBank);
    geometry_.colsPerRow = static_cast<int>(header.colsPerRow);

    if (geometry_.numChannels > systemGeometry.numChannels ||
        geometry_.banksPerChannel > systemGeometry.banksPerChannel ||
        geometry_.rowsPerBank > systemGeometry.rowsPerBank ||
        geometry_.colsPerRow > systemGeometry.colsPerRow) {
        std::fclose(f);
        throw TraceFileError(
            "trace was captured against a larger DRAM geometry than the "
            "simulated system: " +
            path);
    }

    items_.reserve(header.recordCount);
    for (std::uint64_t i = 0; i < header.recordCount; ++i) {
        Record rec{};
        if (std::fread(&rec, sizeof(Record), 1, f) != 1) {
            std::fclose(f);
            throw TraceFileError("truncated trace file: " + path);
        }
        core::TraceItem item;
        item.gap = rec.gap;
        item.access.isWrite = rec.isWrite != 0;
        item.access.channel = rec.channel;
        item.access.bank = rec.bank;
        item.access.row = static_cast<RowId>(rec.row);
        item.access.col = static_cast<ColId>(rec.col);
        items_.push_back(item);
    }
    std::fclose(f);

    if (items_.empty())
        throw TraceFileError("trace file has no records: " + path);
}

core::TraceItem
FileTrace::next()
{
    core::TraceItem item = items_[pos_];
    pos_ = (pos_ + 1) % items_.size();
    return item;
}

void
captureSyntheticTrace(const ThreadProfile &profile, const Geometry &geometry,
                      std::uint64_t seed, std::uint64_t count,
                      const std::string &path)
{
    SyntheticTrace source(profile, geometry, seed);
    TraceWriter writer(path, geometry);
    for (std::uint64_t i = 0; i < count; ++i)
        writer.write(source.next());
    writer.close();
}

void
dumpTraceAsText(const std::string &binPath, const std::string &textPath)
{
    // Loading into memory reuses all of FileTrace's validation.
    Geometry huge;
    huge.numChannels = 256;
    huge.banksPerChannel = 256;
    huge.rowsPerBank = 1 << 30;
    huge.colsPerRow = 1 << 30;
    FileTrace trace(binPath, huge);
    const Geometry &g = trace.traceGeometry();

    std::FILE *out = std::fopen(textPath.c_str(), "w");
    if (!out)
        throw TraceFileError("cannot write " + textPath);
    std::fprintf(out, "# geometry: %d %d %d %d\n", g.numChannels,
                 g.banksPerChannel, g.rowsPerBank, g.colsPerRow);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        core::TraceItem item = trace.next();
        std::fprintf(out, "%llu %c %d %d %d %d\n",
                     static_cast<unsigned long long>(item.gap),
                     item.access.isWrite ? 'W' : 'R', item.access.channel,
                     item.access.bank, item.access.row, item.access.col);
    }
    std::fclose(out);
}

void
convertTextTrace(const std::string &textPath, const std::string &binPath)
{
    std::FILE *in = std::fopen(textPath.c_str(), "r");
    if (!in)
        throw TraceFileError("cannot open " + textPath);

    char line[256];
    Geometry g;
    bool haveGeometry = false;
    std::unique_ptr<TraceWriter> writer;
    std::uint64_t lineno = 0;

    while (std::fgets(line, sizeof(line), in)) {
        ++lineno;
        if (line[0] == '#') {
            if (!haveGeometry &&
                std::sscanf(line, "# geometry: %d %d %d %d",
                            &g.numChannels, &g.banksPerChannel,
                            &g.rowsPerBank, &g.colsPerRow) == 4) {
                haveGeometry = true;
                writer = std::make_unique<TraceWriter>(binPath, g);
            }
            continue;
        }
        if (line[0] == '\n' || line[0] == '\0')
            continue;
        if (!haveGeometry) {
            std::fclose(in);
            throw TraceFileError(
                "text trace must start with '# geometry: ...': " +
                textPath);
        }
        unsigned long long gap;
        char rw;
        int channel, bank, row, col;
        if (std::sscanf(line, "%llu %c %d %d %d %d", &gap, &rw, &channel,
                        &bank, &row, &col) != 6 ||
            (rw != 'R' && rw != 'W')) {
            std::fclose(in);
            throw TraceFileError("malformed record at line " +
                                 std::to_string(lineno) + " of " +
                                 textPath);
        }
        if (channel >= g.numChannels || bank >= g.banksPerChannel ||
            row >= g.rowsPerBank || col >= g.colsPerRow || channel < 0 ||
            bank < 0 || row < 0 || col < 0) {
            std::fclose(in);
            throw TraceFileError("record outside geometry at line " +
                                 std::to_string(lineno) + " of " +
                                 textPath);
        }
        core::TraceItem item;
        item.gap = gap;
        item.access.isWrite = rw == 'W';
        item.access.channel = channel;
        item.access.bank = bank;
        item.access.row = row;
        item.access.col = col;
        writer->write(item);
    }
    std::fclose(in);
    if (!writer || writer->recordsWritten() == 0)
        throw TraceFileError("no records in " + textPath);
    writer->close();
}

} // namespace tcm::workload
