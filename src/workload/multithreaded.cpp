#include "workload/multithreaded.hpp"

#include <algorithm>
#include <cassert>

namespace tcm::workload {

BarrierGroup::BarrierGroup(int numMembers,
                           std::uint64_t instructionsPerPhase)
    : instrPerPhase_(instructionsPerPhase), reached_(numMembers, 0)
{
    assert(numMembers > 0);
    assert(instructionsPerPhase > 0);
}

void
BarrierGroup::memberReached(int m, std::uint64_t phase)
{
    reached_[m] = std::max(reached_[m], phase);
}

bool
BarrierGroup::phaseReleased(std::uint64_t phase) const
{
    for (std::uint64_t r : reached_)
        if (r < phase)
            return false;
    return true;
}

std::uint64_t
BarrierGroup::phasesCompleted() const
{
    return *std::min_element(reached_.begin(), reached_.end());
}

BarrierCoupledTrace::BarrierCoupledTrace(const ThreadProfile &profile,
                                         const Geometry &geometry,
                                         std::uint64_t seed,
                                         BarrierGroup *group, int member,
                                         ChannelId lockChannel,
                                         BankId lockBank, RowId lockRow)
    : inner_(profile, geometry, seed), group_(group), member_(member)
{
    lockLine_.isWrite = false;
    lockLine_.channel = lockChannel;
    lockLine_.bank = lockBank;
    lockLine_.row = lockRow;
    lockLine_.col = 0;
}

core::TraceItem
BarrierCoupledTrace::next()
{
    // At a barrier: spin until the group releases the phase we completed.
    if (instrThisPhase_ >= group_->instructionsPerPhase()) {
        group_->memberReached(member_, phase_ + 1);
        if (!group_->phaseReleased(phase_ + 1)) {
            // Spin-wait: poll the lock line with a little compute between
            // polls. These instructions are wait, not progress.
            ++spinReads_;
            core::TraceItem spin;
            spin.gap = 200;
            spin.access = lockLine_;
            return spin;
        }
        ++phase_;
        instrThisPhase_ = 0;
    }

    if (!havePending_) {
        pending_ = inner_.next();
        havePending_ = true;
    }

    // Emit the pending item, splitting it if it would cross the phase
    // boundary (the barrier sits between instructions, so a long compute
    // gap may need to be cut at the boundary).
    std::uint64_t budget =
        group_->instructionsPerPhase() - instrThisPhase_;
    std::uint64_t itemInstructions =
        pending_.gap + (pending_.access.isWrite ? 0 : 1);

    if (itemInstructions > budget && pending_.gap >= budget) {
        // Cut the gap at the barrier; the access stays pending.
        core::TraceItem head;
        head.gap = budget;
        head.access = lockLine_; // the barrier's own synchronization read
        pending_.gap -= budget;
        instrThisPhase_ += budget;
        return head;
    }

    instrThisPhase_ += itemInstructions;
    havePending_ = false;
    return pending_;
}

} // namespace tcm::workload
