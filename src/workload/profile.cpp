#include "workload/profile.hpp"

// ThreadProfile is an aggregate; this translation unit exists so the
// workload library always has at least one object file even if future
// helpers move elsewhere.
