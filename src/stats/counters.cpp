#include "stats/counters.hpp"

#include <cassert>

namespace tcm::stats {

std::uint64_t
NamedCounters::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts_)
        sum += c;
    return sum;
}

std::vector<std::pair<std::string, std::uint64_t>>
NamedCounters::snapshot() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(labels_.size());
    for (std::size_t i = 0; i < labels_.size(); ++i)
        out.emplace_back(labels_[i], counts_[i]);
    return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
NamedCounters::nonZero() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (std::size_t i = 0; i < labels_.size(); ++i)
        if (counts_[i] != 0)
            out.emplace_back(labels_[i], counts_[i]);
    return out;
}

void
NamedCounters::addFrom(const NamedCounters &other)
{
    assert(other.labels_.size() == labels_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        assert(other.labels_[i] == labels_[i]);
        counts_[i] += other.counts_[i];
    }
}

void
NamedCounters::reset()
{
    counts_.assign(counts_.size(), 0);
}

} // namespace tcm::stats
