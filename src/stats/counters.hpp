/**
 * @file
 * Small fixed-vocabulary named-counter set: an ordered list of labelled
 * uint64 counters. Used wherever a component exposes per-category event
 * counts to the report layer (e.g. the protocol checker's per-constraint
 * violation tallies).
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tcm::stats {

/**
 * Counters keyed by a dense id with a human-readable label per slot.
 * The vocabulary is fixed at construction; bumping is O(1) with no
 * hashing, and snapshots preserve declaration order for stable reports.
 */
class NamedCounters
{
  public:
    explicit NamedCounters(std::vector<std::string> labels)
        : labels_(std::move(labels)), counts_(labels_.size(), 0)
    {
    }

    std::size_t size() const { return labels_.size(); }
    const std::string &label(std::size_t id) const { return labels_[id]; }
    std::uint64_t count(std::size_t id) const { return counts_[id]; }

    void bump(std::size_t id, std::uint64_t by = 1) { counts_[id] += by; }

    /** Sum over all slots. */
    std::uint64_t total() const;

    /** (label, count) pairs in declaration order, zeros included. */
    std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

    /** (label, count) pairs for the non-zero slots only. */
    std::vector<std::pair<std::string, std::uint64_t>> nonZero() const;

    /**
     * Slot-wise add @p other into this set; the vocabularies must match
     * (same labels in the same order, asserted in debug builds). This is
     * the merge half of the shard pattern used under intra-run parallel
     * stepping: each worker bumps a private shard, and the owner folds
     * the shards into one logical counter set at a barrier — bumping a
     * shared NamedCounters from concurrent workers is a data race.
     */
    void addFrom(const NamedCounters &other);

    void reset();

  private:
    std::vector<std::string> labels_;
    std::vector<std::uint64_t> counts_;
};

} // namespace tcm::stats
