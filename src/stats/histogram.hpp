/**
 * @file
 * Bucketed histogram for latency distributions.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace tcm::stats {

/**
 * Fixed-bucket histogram with approximate percentiles. Buckets are
 * defined by ascending upper bounds; values beyond the last bound land
 * in an overflow bucket. Percentiles interpolate linearly within a
 * bucket, which is accurate enough for latency reporting when buckets
 * grow geometrically.
 */
class Histogram
{
  public:
    /** @param upperBounds ascending bucket upper bounds (at least one). */
    explicit Histogram(std::vector<double> upperBounds);

    /**
     * Geometric bucket ladder: @p buckets buckets whose bounds start at
     * @p first and multiply by @p factor — the usual shape for latency.
     */
    static Histogram exponential(double first, double factor, int buckets);

    void add(double value);

    /** Merge another histogram with identical bucket bounds. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Approximate p-th percentile. Interpolates linearly within the
     * bucket containing the target rank, then clamps to the observed
     * [min(), max()] so a sparsely filled bucket can never report a
     * value outside what was actually added.
     *
     * Edge-case contract (relied on by reporting code, locked by
     * tests/test_stats):
     * - Empty histogram: returns 0.0 for every p.
     * - @p p is clamped to [0, 1]; out-of-range arguments are not an
     *   error.
     * - p == 0 resolves inside the first non-empty bucket and the
     *   min-clamp makes it report exactly min().
     * - p == 1 reports max() exactly — either via the overflow bucket
     *   or the max-clamp.
     * - Any percentile landing in the overflow bucket (values beyond
     *   the last bound) reports the observed maximum: there is no upper
     *   bound to interpolate toward, and max() is the only honest
     *   answer.
     */
    double percentile(double p) const;

    const std::vector<double> &bounds() const { return bounds_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_; //!< bounds_.size() + 1 (overflow)
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace tcm::stats
