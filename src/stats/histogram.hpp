/**
 * @file
 * Bucketed histogram for latency distributions.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace tcm::stats {

/**
 * Fixed-bucket histogram with approximate percentiles. Buckets are
 * defined by ascending upper bounds; values beyond the last bound land
 * in an overflow bucket. Percentiles interpolate linearly within a
 * bucket, which is accurate enough for latency reporting when buckets
 * grow geometrically.
 */
class Histogram
{
  public:
    /** @param upperBounds ascending bucket upper bounds (at least one). */
    explicit Histogram(std::vector<double> upperBounds);

    /**
     * Geometric bucket ladder: @p buckets buckets whose bounds start at
     * @p first and multiply by @p factor — the usual shape for latency.
     */
    static Histogram exponential(double first, double factor, int buckets);

    void add(double value);

    /** Merge another histogram with identical bucket bounds. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Approximate p-th percentile (p in [0,1]). Returns 0 when empty.
     * Values in the overflow bucket report the observed maximum.
     */
    double percentile(double p) const;

    const std::vector<double> &bounds() const { return bounds_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_; //!< bounds_.size() + 1 (overflow)
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace tcm::stats
