#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>

namespace tcm::stats {

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds))
{
    assert(!bounds_.empty());
    assert(std::is_sorted(bounds_.begin(), bounds_.end()));
    counts_.assign(bounds_.size() + 1, 0);
}

Histogram
Histogram::exponential(double first, double factor, int buckets)
{
    assert(first > 0.0 && factor > 1.0 && buckets > 0);
    std::vector<double> bounds;
    bounds.reserve(buckets);
    double b = first;
    for (int i = 0; i < buckets; ++i) {
        bounds.push_back(b);
        b *= factor;
    }
    return Histogram(std::move(bounds));
}

void
Histogram::add(double value)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++counts_[it - bounds_.begin()];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_)
        min_ = value;
    if (count_ == 1 || value > max_)
        max_ = value;
}

void
Histogram::merge(const Histogram &other)
{
    assert(bounds_ == other.bounds_);
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    if (other.count_ > 0) {
        if (count_ == 0) {
            min_ = other.min_;
            max_ = other.max_;
        } else {
            min_ = std::min(min_, other.min_);
            max_ = std::max(max_, other.max_);
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    double target = p * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        double lo = static_cast<double>(cum);
        cum += counts_[i];
        if (static_cast<double>(cum) >= target) {
            if (i == counts_.size() - 1)
                return max_; // overflow bucket: report the observed max
            double lower = i == 0 ? std::min(min_, bounds_[0]) : bounds_[i - 1];
            double upper = bounds_[i];
            double frac = counts_[i] ? (target - lo) / counts_[i] : 0.0;
            // The interpolation can overshoot the observed extremes when
            // a bucket is sparsely filled; clamp to what was seen.
            return std::clamp(lower + frac * (upper - lower), min_, max_);
        }
    }
    return max_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

} // namespace tcm::stats
