#include "prof/profiler.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/numfmt.hpp"

namespace tcm::prof {

const char *
phaseName(Phase p)
{
    switch (p) {
    case Phase::SchedTick: return "sched.tick";
    case Phase::CtrlTick: return "ctrl.tick";
    case Phase::ReadScan: return "ctrl.scan";
    case Phase::CoreTick: return "core.tick";
    case Phase::GangRun: return "gang.run";
    case Phase::Replay: return "replay";
    case Phase::Telemetry: return "telemetry";
    case Phase::Serialize: return "serialize";
    }
    return "?";
}

const char *
phaseKey(Phase p)
{
    switch (p) {
    case Phase::SchedTick: return "sched_tick";
    case Phase::CtrlTick: return "ctrl_tick";
    case Phase::ReadScan: return "ctrl_scan";
    case Phase::CoreTick: return "core_tick";
    case Phase::GangRun: return "gang_run";
    case Phase::Replay: return "replay";
    case Phase::Telemetry: return "telemetry";
    case Phase::Serialize: return "serialize";
    }
    return "?";
}

const char *
horizonSourceName(HorizonSource s)
{
    switch (s) {
    case HorizonSource::Scheduler: return "scheduler";
    case HorizonSource::Controller: return "controller";
    case HorizonSource::Telemetry: return "telemetry";
    case HorizonSource::Core: return "core";
    case HorizonSource::End: return "end";
    }
    return "?";
}

ProfileConfig
ProfileConfig::fromEnv()
{
    ProfileConfig config;
    const char *v = std::getenv("TCMSIM_PROFILE");
    if (v == nullptr || v[0] == '\0' || std::string(v) == "0")
        return config;
    config.enabled = true;
    if (std::string(v) != "1")
        config.dir = v;
    return config;
}

stats::Histogram
skipLengthLadder()
{
    // 1, 2, 4, ... 2^19 cycles; longer jumps land in the overflow bucket
    // and report the observed maximum (Histogram percentile contract).
    return stats::Histogram::exponential(1.0, 2.0, 20);
}

void
Profiler::configure(int numCores, int numChannels, int gangLanes)
{
    controllers_.assign(static_cast<std::size_t>(std::max(numChannels, 1)),
                        ControllerShard{});
    coreRegimes_.assign(static_cast<std::size_t>(std::max(numCores, 1)), {});
    gangLanes_ = std::max(gangLanes, 1);
    laneBusyNs_.assign(static_cast<std::size_t>(gangLanes_), 0);
    laneTasks_.assign(static_cast<std::size_t>(gangLanes_), 0);
}

Profiler::Pulse
Profiler::pulse() const
{
    Pulse p;
    std::uint64_t ns = 0;
    for (int i = 0; i < kPhaseCount; ++i)
        ns += main_.ns[i];
    for (const ControllerShard &c : controllers_)
        ns += c.phases.ns[static_cast<int>(Phase::CtrlTick)];
    p.wallMs = static_cast<double>(ns) / 1e6;
    for (int i = 0; i < kHorizonSourceCount; ++i) {
        p.skips += skipCount_[i];
        p.skippedCycles += skipCycles_[i];
    }
    return p;
}

ProfileReport
Profiler::report() const
{
    ProfileReport r;
    r.enabled = true;
    r.runs = 1;
    for (int i = 0; i < kPhaseCount; ++i) {
        r.phaseNs[i] = main_.ns[i];
        r.phaseCalls[i] = main_.calls[i];
    }
    for (const ControllerShard &c : controllers_) {
        for (int i = 0; i < kPhaseCount; ++i) {
            r.phaseNs[i] += c.phases.ns[i];
            r.phaseCalls[i] += c.phases.calls[i];
        }
        r.scan.addFrom(c.scan);
    }
    r.skipCount = skipCount_;
    r.skipCycles = skipCycles_;
    r.skipLengths = skipLengths_;
    r.coreRegimes = coreRegimes_;
    r.gangLanes = gangLanes_;
    r.laneBusyNs = laneBusyNs_;
    r.laneTasks = laneTasks_;
    return r;
}

std::uint64_t
ProfileReport::totalSkips() const
{
    std::uint64_t n = 0;
    for (int i = 0; i < kHorizonSourceCount; ++i)
        n += skipCount[i];
    return n;
}

std::uint64_t
ProfileReport::totalSkippedCycles() const
{
    std::uint64_t n = 0;
    for (int i = 0; i < kHorizonSourceCount; ++i)
        n += skipCycles[i];
    return n;
}

std::uint64_t
ProfileReport::regimeTotal(Regime r) const
{
    std::uint64_t n = 0;
    for (const auto &core : coreRegimes)
        n += core[static_cast<int>(r)];
    return n;
}

double
ProfileReport::phaseMs(Phase p) const
{
    return static_cast<double>(phaseNs[static_cast<int>(p)]) / 1e6;
}

void
ProfileReport::merge(const ProfileReport &other)
{
    if (!other.enabled)
        return;
    enabled = true;
    runs += other.runs;
    for (int i = 0; i < kPhaseCount; ++i) {
        phaseNs[i] += other.phaseNs[i];
        phaseCalls[i] += other.phaseCalls[i];
    }
    for (int i = 0; i < kHorizonSourceCount; ++i) {
        skipCount[i] += other.skipCount[i];
        skipCycles[i] += other.skipCycles[i];
    }
    skipLengths.merge(other.skipLengths);
    if (coreRegimes.size() < other.coreRegimes.size())
        coreRegimes.resize(other.coreRegimes.size());
    for (std::size_t c = 0; c < other.coreRegimes.size(); ++c)
        for (int r = 0; r < kRegimeCount; ++r)
            coreRegimes[c][r] += other.coreRegimes[c][r];
    scan.addFrom(other.scan);
    gangLanes = std::max(gangLanes, other.gangLanes);
    if (laneBusyNs.size() < other.laneBusyNs.size())
        laneBusyNs.resize(other.laneBusyNs.size(), 0);
    for (std::size_t l = 0; l < other.laneBusyNs.size(); ++l)
        laneBusyNs[l] += other.laneBusyNs[l];
    if (laneTasks.size() < other.laneTasks.size())
        laneTasks.resize(other.laneTasks.size(), 0);
    for (std::size_t l = 0; l < other.laneTasks.size(); ++l)
        laneTasks[l] += other.laneTasks[l];
}

std::vector<std::pair<std::string, double>>
ProfileReport::provenance() const
{
    // Fixed key order: these land verbatim in the ResultsDoc "run"
    // block, which must serialize identically across builds.
    std::vector<std::pair<std::string, double>> out;
    for (int i = 0; i < kPhaseCount; ++i)
        out.emplace_back(std::string(phaseKey(static_cast<Phase>(i))) + "_ms",
                         static_cast<double>(phaseNs[i]) / 1e6);
    out.emplace_back("skips", static_cast<double>(totalSkips()));
    out.emplace_back("skipped_cycles",
                     static_cast<double>(totalSkippedCycles()));
    out.emplace_back("skip_p50", skipLengths.percentile(0.5));
    out.emplace_back("skip_max", skipLengths.max());
    for (int i = 0; i < kHorizonSourceCount; ++i)
        out.emplace_back(std::string("horizon_") + horizonSourceName(
                             static_cast<HorizonSource>(i)),
                         static_cast<double>(skipCount[i]));
    out.emplace_back("dormant_cycles",
                     static_cast<double>(regimeTotal(Regime::Dormant)));
    out.emplace_back("streaming_cycles",
                     static_cast<double>(regimeTotal(Regime::Streaming)));
    out.emplace_back("lockstep_cycles",
                     static_cast<double>(regimeTotal(Regime::Lockstep)));
    out.emplace_back("reads_examined",
                     static_cast<double>(scan.readsExamined));
    out.emplace_back("dominance_skipped",
                     static_cast<double>(scan.dominanceSkipped));
    out.emplace_back("fallback_scans",
                     static_cast<double>(scan.fallbackScans));
    return out;
}

namespace {

std::string
num(double v)
{
    return formatDouble(v);
}

} // namespace

std::string
ProfileReport::toJson() const
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"tcmsim-profile-v1\",\n";
    out << "  \"runs\": " << runs << ",\n";
    out << "  \"phases\": {";
    for (int i = 0; i < kPhaseCount; ++i) {
        if (i)
            out << ", ";
        out << "\"" << phaseKey(static_cast<Phase>(i)) << "\": {\"ms\": "
            << num(static_cast<double>(phaseNs[i]) / 1e6) << ", \"calls\": "
            << phaseCalls[i] << "}";
    }
    out << "},\n";
    out << "  \"horizon\": {";
    for (int i = 0; i < kHorizonSourceCount; ++i) {
        if (i)
            out << ", ";
        out << "\"" << horizonSourceName(static_cast<HorizonSource>(i))
            << "\": {\"skips\": " << skipCount[i] << ", \"cycles\": "
            << skipCycles[i] << "}";
    }
    out << "},\n";
    out << "  \"skip_length\": {\"count\": " << skipLengths.count()
        << ", \"p50\": " << num(skipLengths.percentile(0.5))
        << ", \"p90\": " << num(skipLengths.percentile(0.9))
        << ", \"p99\": " << num(skipLengths.percentile(0.99))
        << ", \"max\": " << num(skipLengths.max()) << "},\n";
    out << "  \"regimes\": {\"dormant\": " << regimeTotal(Regime::Dormant)
        << ", \"streaming\": " << regimeTotal(Regime::Streaming)
        << ", \"lockstep\": " << regimeTotal(Regime::Lockstep) << "},\n";
    out << "  \"scan\": {\"soa_scans\": " << scan.soaScans
        << ", \"reads_examined\": " << scan.readsExamined
        << ", \"dominance_skipped\": " << scan.dominanceSkipped
        << ", \"fallback_scans\": " << scan.fallbackScans << "},\n";
    out << "  \"lanes\": [";
    for (std::size_t l = 0; l < laneBusyNs.size(); ++l) {
        if (l)
            out << ", ";
        std::uint64_t tasks = l < laneTasks.size() ? laneTasks[l] : 0;
        out << "{\"busy_ms\": "
            << num(static_cast<double>(laneBusyNs[l]) / 1e6)
            << ", \"tasks\": " << tasks << "}";
    }
    out << "]\n}\n";
    return out.str();
}

void
ProfileReport::print(std::FILE *out) const
{
    if (!enabled)
        return;
    double totalMs = 0.0;
    for (int i = 0; i < kPhaseCount; ++i)
        totalMs += static_cast<double>(phaseNs[i]) / 1e6;
    std::fprintf(out, "Simulator profile (%d run%s, %.2f ms profiled)\n",
                 runs, runs == 1 ? "" : "s", totalMs);
    std::fprintf(out, "  %-12s %12s %12s\n", "phase", "ms", "calls");
    for (int i = 0; i < kPhaseCount; ++i) {
        if (phaseCalls[i] == 0 && phaseNs[i] == 0)
            continue;
        std::fprintf(out, "  %-12s %12.3f %12llu\n",
                     phaseName(static_cast<Phase>(i)),
                     static_cast<double>(phaseNs[i]) / 1e6,
                     static_cast<unsigned long long>(phaseCalls[i]));
    }
    std::uint64_t skips = totalSkips();
    if (skips > 0) {
        std::fprintf(out,
                     "  horizon jumps: %llu spanning %llu cycles "
                     "(p50 %.0f, max %.0f)\n",
                     static_cast<unsigned long long>(skips),
                     static_cast<unsigned long long>(totalSkippedCycles()),
                     skipLengths.percentile(0.5), skipLengths.max());
        std::fprintf(out, "  bounded by:");
        for (int i = 0; i < kHorizonSourceCount; ++i)
            std::fprintf(out, " %s %llu",
                         horizonSourceName(static_cast<HorizonSource>(i)),
                         static_cast<unsigned long long>(skipCount[i]));
        std::fprintf(out, "\n");
    }
    std::uint64_t dorm = regimeTotal(Regime::Dormant);
    std::uint64_t stream = regimeTotal(Regime::Streaming);
    std::uint64_t lock = regimeTotal(Regime::Lockstep);
    if (dorm + stream + lock > 0)
        std::fprintf(out,
                     "  core regimes: dormant %llu, streaming %llu, "
                     "lockstep %llu cycles\n",
                     static_cast<unsigned long long>(dorm),
                     static_cast<unsigned long long>(stream),
                     static_cast<unsigned long long>(lock));
    if (scan.soaScans + scan.fallbackScans > 0) {
        double skipPct =
            scan.readsExamined + scan.dominanceSkipped > 0
                ? 100.0 * static_cast<double>(scan.dominanceSkipped) /
                      static_cast<double>(scan.readsExamined +
                                          scan.dominanceSkipped)
                : 0.0;
        std::fprintf(out,
                     "  soa scan: %llu scans, %llu reads examined, "
                     "%llu dominance-skipped (%.1f%%), %llu fallback\n",
                     static_cast<unsigned long long>(scan.soaScans),
                     static_cast<unsigned long long>(scan.readsExamined),
                     static_cast<unsigned long long>(scan.dominanceSkipped),
                     skipPct,
                     static_cast<unsigned long long>(scan.fallbackScans));
    }
    if (gangLanes > 1 && !laneBusyNs.empty()) {
        double gangMs = phaseMs(Phase::GangRun);
        std::fprintf(out, "  gang: %d lanes over %.3f ms dispatched;",
                     gangLanes, gangMs);
        for (std::size_t l = 0; l < laneBusyNs.size(); ++l) {
            std::uint64_t tasks = l < laneTasks.size() ? laneTasks[l] : 0;
            std::fprintf(out, " lane%zu %.3f ms/%llu tasks", l,
                         static_cast<double>(laneBusyNs[l]) / 1e6,
                         static_cast<unsigned long long>(tasks));
        }
        std::fprintf(out, "\n");
    }
}

} // namespace tcm::prof
