/**
 * @file
 * Simulator self-profiling: wall-clock phase timers, cycle-skip horizon
 * attribution, regime occupancy, scan efficiency and gang imbalance.
 *
 * The profiler is a detachable observer of the *simulator*, not of the
 * simulated system: it may read the wall clock, but nothing it measures
 * may feed back into simulated state, so results are bit-identical with
 * the profiler attached or detached (enforced by tests/test_prof). When
 * detached every instrumentation site reduces to a null-pointer check —
 * no clock reads, no allocation.
 *
 * Threading contract: each gang lane writes only its own shards
 * (per-channel ControllerShard, per-lane busy slots); the owner reads
 * them after the gang join, whose release/acquire edge publishes the
 * writes. Everything else is owner-thread only.
 */

#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.hpp"

namespace tcm::prof {

/** Wall-clock phases of one simulation step. ReadScan nests inside
 *  CtrlTick; everything else is disjoint. */
enum class Phase : int {
    SchedTick = 0, //!< scheduler policy tick + hook dispatch
    CtrlTick,      //!< memory-controller tick (admit/refresh/issue)
    ReadScan,      //!< SoA read-queue scan (subset of CtrlTick)
    CoreTick,      //!< core lockstep ticks + silent fast-forwarding
    GangRun,       //!< fork-to-join wall time of one gang dispatch
    Replay,        //!< deferred hook/event replay at gang barriers
    Telemetry,     //!< interval sampling into the telemetry sink
    Serialize,     //!< end-of-run telemetry/profile file writes
};

inline constexpr int kPhaseCount = 8;

/** Stable short name ("sched.tick", ...) for reports. */
const char *phaseName(Phase p);

/** Stable identifier-safe key ("sched_tick", ...) for JSON. */
const char *phaseKey(Phase p);

/** Which subsystem's horizon bounded a cycle-skip jump (serial kernel)
 *  or a decoupled span (gang kernel). */
enum class HorizonSource : int {
    Scheduler = 0, //!< SchedulerPolicy::nextEventAt / decoupleHorizon
    Controller,    //!< MemoryController::nextEventAt / completion lag
    Telemetry,     //!< telemetry interval sample clock
    Core,          //!< core regime end or earliestMemTouchBound
    End,           //!< requested end of the step() window
};

inline constexpr int kHorizonSourceCount = 5;

const char *horizonSourceName(HorizonSource s);

/** Core execution regime for one simulated cycle. */
enum class Regime : int {
    Dormant = 0, //!< full window stalled on a memory miss
    Streaming,   //!< closed-form plain-instruction advance
    Lockstep,    //!< full per-cycle core tick
};

inline constexpr int kRegimeCount = 3;

/** Per-lane (or owner) phase accumulator: fixed arrays, zero allocation,
 *  written by exactly one thread at a time. */
struct PhaseShard {
    std::array<std::uint64_t, kPhaseCount> ns{};
    std::array<std::uint64_t, kPhaseCount> calls{};

    void
    addFrom(const PhaseShard &other)
    {
        for (int i = 0; i < kPhaseCount; ++i) {
            ns[i] += other.ns[i];
            calls[i] += other.calls[i];
        }
    }
};

/** RAII phase timer. A null shard skips the clock entirely, so the
 *  detached cost is two predictable branches. */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseShard *shard, Phase phase) : shard_(shard), phase_(phase)
    {
        if (shard_ != nullptr)
            t0_ = std::chrono::steady_clock::now();
    }

    ~ScopedPhase()
    {
        if (shard_ == nullptr)
            return;
        auto dt = std::chrono::steady_clock::now() - t0_;
        shard_->ns[static_cast<int>(phase_)] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
        ++shard_->calls[static_cast<int>(phase_)];
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    PhaseShard *shard_;
    Phase phase_;
    std::chrono::steady_clock::time_point t0_{};
};

/** SoA read-scan efficiency counters (see mem::Controller::tryIssueReads). */
struct ScanCounters {
    std::uint64_t soaScans = 0;         //!< SoA scans executed
    std::uint64_t readsExamined = 0;    //!< candidate reads visited
    std::uint64_t dominanceSkipped = 0; //!< rejected by packed-key compare
    std::uint64_t fallbackScans = 0;    //!< legacy scans (rank overflow)

    void
    addFrom(const ScanCounters &other)
    {
        soaScans += other.soaScans;
        readsExamined += other.readsExamined;
        dominanceSkipped += other.dominanceSkipped;
        fallbackScans += other.fallbackScans;
    }
};

/** Per-controller shard: written by whichever lane steps that channel,
 *  merged by the owner after the gang join. */
struct ControllerShard {
    PhaseShard phases;
    ScanCounters scan;
};

/** How profiling is requested. */
struct ProfileConfig {
    bool enabled = false;
    /** When non-empty: write one <prefix><name>_seed<N>.profile.json per
     *  run into this directory. */
    std::string dir;
    std::string filePrefix;

    /**
     * TCMSIM_PROFILE environment knob: unset or "0" = off, "1" = on
     * (report only), any other value = on with that output directory.
     * Consulted by runWorkload when SystemConfig::profile is off, so
     * every bench and tool inherits profiling without new flags.
     */
    static ProfileConfig fromEnv();
};

/** Bucket ladder for skip/span lengths in cycles (1, 2, 4, ... ~1M). */
stats::Histogram skipLengthLadder();

/**
 * End-of-run profile: a mergeable value type. merge() folds another
 * run's report in (lane/core vectors resize to the larger run), so
 * sweeps can aggregate per scheduler across workloads.
 */
struct ProfileReport {
    bool enabled = false;
    int runs = 0;

    std::array<std::uint64_t, kPhaseCount> phaseNs{};
    std::array<std::uint64_t, kPhaseCount> phaseCalls{};

    std::array<std::uint64_t, kHorizonSourceCount> skipCount{};
    std::array<std::uint64_t, kHorizonSourceCount> skipCycles{};
    stats::Histogram skipLengths = skipLengthLadder();

    std::vector<std::array<std::uint64_t, kRegimeCount>> coreRegimes;
    ScanCounters scan;

    int gangLanes = 1;
    std::vector<std::uint64_t> laneBusyNs;
    std::vector<std::uint64_t> laneTasks;

    std::uint64_t totalSkips() const;
    std::uint64_t totalSkippedCycles() const;
    std::uint64_t regimeTotal(Regime r) const;
    double phaseMs(Phase p) const;

    void merge(const ProfileReport &other);

    /** Flat (key, value) metrics for the ResultsDoc run-provenance
     *  block: fixed key order, never baseline-diffed. */
    std::vector<std::pair<std::string, double>> provenance() const;

    /** Self-describing JSON document (tcmsim-profile-v1). */
    std::string toJson() const;

    /** Human-readable rendering (SystemReport section). */
    void print(std::FILE *out) const;
};

/**
 * Live collector owned by whoever attached it (runWorkload, a tool, a
 * test). configure() is called by Simulator::attachProfiler with the
 * run's geometry; all vectors are sized there once, so the hot-path
 * pointers handed to the controllers and the gang stay stable.
 */
class Profiler
{
  public:
    Profiler() = default;

    void configure(int numCores, int numChannels, int gangLanes);

    PhaseShard &main() { return main_; }
    ControllerShard *controllerShard(int channel)
    {
        return &controllers_[static_cast<std::size_t>(channel)];
    }

    int gangLanes() const { return gangLanes_; }
    std::uint64_t *laneBusyNs() { return laneBusyNs_.data(); }
    std::uint64_t *laneTasks() { return laneTasks_.data(); }

    void
    recordSkip(HorizonSource src, std::uint64_t cycles)
    {
        ++skipCount_[static_cast<int>(src)];
        skipCycles_[static_cast<int>(src)] += cycles;
        skipLengths_.add(static_cast<double>(cycles));
    }

    void
    addRegime(std::size_t core, Regime r, std::uint64_t cycles)
    {
        coreRegimes_[core][static_cast<int>(r)] += cycles;
    }

    /** Cheap cumulative snapshot for the telemetry "simulator" lane. */
    struct Pulse {
        double wallMs = 0.0;
        std::uint64_t skips = 0;
        std::uint64_t skippedCycles = 0;
    };
    Pulse pulse() const;

    /** Fold every shard into a mergeable end-of-run report. */
    ProfileReport report() const;

  private:
    PhaseShard main_;
    std::vector<ControllerShard> controllers_;
    std::array<std::uint64_t, kHorizonSourceCount> skipCount_{};
    std::array<std::uint64_t, kHorizonSourceCount> skipCycles_{};
    stats::Histogram skipLengths_ = skipLengthLadder();
    std::vector<std::array<std::uint64_t, kRegimeCount>> coreRegimes_;
    int gangLanes_ = 1;
    std::vector<std::uint64_t> laneBusyNs_;
    std::vector<std::uint64_t> laneTasks_;
};

} // namespace tcm::prof
